// Per-call context for the estimation path. EstimateContext replaces the
// bare `double now` parameter that CostingProfile::Estimate and the
// federation planners used to take: the deployment clock still rides along,
// but the struct also carries the observability hooks (trace sink, metrics
// registry, provenance detail level) and an optional choice-policy override
// — none of which had anywhere to live in the old signature.
//
// The default-constructed context is the fast path: no sink, no metrics
// registry, cost-only detail. Instrumented code checks `tracing()` /
// `provenance()` / `timing()` before doing any work beyond the estimate
// itself, which is what keeps the disabled path inside the <2% latency
// budget (DESIGN.md §10).

#ifndef INTELLISPHERE_CORE_ESTIMATE_CONTEXT_H_
#define INTELLISPHERE_CORE_ESTIMATE_CONTEXT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/runtime_metrics.h"
#include "util/trace.h"

namespace intellisphere::remote {
class HealthRegistry;
}  // namespace intellisphere::remote

namespace intellisphere::core {

/// How to resolve multiple applicable algorithms (Section 4): assume the
/// worst case, the average, or what the in-house (Teradata) optimizer
/// would pick — its cheapest candidate.
enum class ChoicePolicy {
  kWorstCase,
  kAverage,
  kInHouseComparable,
};

const char* ChoicePolicyName(ChoicePolicy policy);

/// Scheduling class for a request, consulted by the serving-layer
/// admission controller (serving/admission.h). Foreground traffic is
/// planner-facing and keeps serving at pressure levels where background
/// traffic (lifecycle shadow evaluation, retrain probes, warmups) is
/// already shed — DESIGN.md §17.
enum class RequestPriority {
  kForeground,
  kBackground,
};

const char* RequestPriorityName(RequestPriority priority);

/// How much provenance an estimate call should collect.
enum class EstimateDetail {
  /// Numbers only — elimination reasons and candidate lists that require
  /// string building are skipped (cheap integer tallies are always kept).
  kCostOnly,
  /// Full provenance: eliminated candidates with the rule text that killed
  /// them. What EXPLAIN and the federation planners ask for.
  kProvenance,
};

struct EstimateContext {
  /// Deployment clock in seconds, consulted by time-phased profiles.
  double now = 0.0;
  /// Optional span sink; spans are emitted only when set.
  TraceSink* trace = nullptr;
  /// Span id new root spans attach under (0 = top-level).
  int64_t parent_span = 0;
  EstimateDetail detail = EstimateDetail::kCostOnly;
  /// Overrides the estimator's configured algorithm-choice policy for this
  /// call only.
  std::optional<ChoicePolicy> policy_override;
  /// Counters/histograms destination; nullptr = MetricsRegistry::Global().
  MetricsRegistry* metrics = nullptr;
  /// Per-system breaker states (see remote/health.h); when set, the
  /// estimator consults it and degrades estimates for systems whose
  /// breaker is open. nullptr = no health checks (the fast path).
  const remote::HealthRegistry* health = nullptr;
  /// Set by CostEstimator::Estimate when `health` reports the target
  /// system's breaker open at `now`; CostingProfile::Estimate then walks
  /// the degradation ladder (DESIGN.md §12) instead of trusting remote
  /// signals.
  bool breaker_open = false;
  /// Absolute deployment-clock deadline for this request (seconds; 0 = no
  /// deadline). The serving layer rejects work whose deadline already
  /// passed with DeadlineExceeded before touching the cache, and the
  /// admission controller sheds batches *early* when its queue model
  /// predicts they cannot finish in time (DESIGN.md §17).
  double deadline_seconds = 0.0;
  /// Tenant identity for per-tenant admission accounting (token buckets,
  /// SLO attribution). A view, not a copy: the caller owns the backing
  /// string for the duration of the call. Empty = the anonymous tenant.
  std::string_view tenant;
  /// Scheduling class; background traffic yields to foreground under
  /// queue pressure (serving/admission.h).
  RequestPriority priority = RequestPriority::kForeground;
  /// Set by AdmissionController when it admits a request in degraded mode
  /// (rung two of the serve → serve-degraded → shed ladder).
  /// CostingProfile::Estimate then walks the same degradation ladder as
  /// breaker_open, with "admission_overload:*" fallback reasons, and the
  /// serving layer may answer from a stale cache entry. Degraded results
  /// are never written back to the cache.
  bool admission_degraded = false;

  /// Whether `deadline_seconds` is set and already behind clock `at`.
  bool DeadlineExpiredAt(double at) const {
    return deadline_seconds > 0.0 && at > deadline_seconds;
  }

  bool tracing() const { return trace != nullptr; }
  /// Whether to build string-typed provenance (reason texts, candidate
  /// lists). Tracing implies provenance: a span consumer sees the same
  /// breakdown EXPLAIN would.
  bool provenance() const {
    return detail == EstimateDetail::kProvenance || trace != nullptr;
  }
  /// Whether to read the clock for the latency histogram. Only worth the
  /// steady_clock calls when someone is looking.
  bool timing() const { return trace != nullptr || metrics != nullptr; }

  MetricsRegistry& Registry() const {
    return metrics != nullptr ? *metrics : MetricsRegistry::Global();
  }

  /// Starts a root span under `parent_span` (disabled when no sink).
  TraceSpan StartSpan(std::string name) const {
    return TraceSpan(trace, std::move(name), parent_span);
  }

  /// A copy of this context whose new spans nest under `span` — how a
  /// caller hands its own span down to Estimate as the parent.
  EstimateContext Under(const TraceSpan& span) const {
    EstimateContext child = *this;
    child.parent_span = span.id();
    return child;
  }

  /// A context carrying only the deployment clock — the minimal upgrade
  /// for callers that used to pass a bare `double now` (the deprecated
  /// overloads themselves are gone). Guarantee: `metrics` stays nullptr,
  /// which `Registry()` resolves to MetricsRegistry::Global() — clock-only
  /// callers still record the ambient `estimate.approach.*` / `plan.*`
  /// counters. `metrics` is deliberately NOT set to &Global() explicitly:
  /// that would flip `timing()` on and add clock reads + a latency
  /// histogram to every clock-only call.
  static EstimateContext AtTime(double now) {
    EstimateContext ctx;
    ctx.now = now;
    return ctx;
  }
};

}  // namespace intellisphere::core

#endif  // INTELLISPHERE_CORE_ESTIMATE_CONTEXT_H_
