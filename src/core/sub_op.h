// Sub-operator costing (Section 4): learn per-record linear cost models for
// primitive building-block operators (Figure 5) from a handful of probe
// queries, then compose analytical formulas per physical algorithm
// (core/formulas.h).
//
// Calibration follows the paper's methodology: no instrumentation inside
// the remote system; primitive queries are submitted and sub-op costs are
// extracted by subtraction (e.g. wD = t(read+write) - t(read)). Because
// probe queries run in parallel task waves, per-record *work* is recovered
// by normalizing the subtracted elapsed time by waves * rows-per-task —
// structural facts an openbox profile knows (block size, slot count).

#ifndef INTELLISPHERE_CORE_SUB_OP_H_
#define INTELLISPHERE_CORE_SUB_OP_H_

#include <map>
#include <string>
#include <vector>

#include "ml/linear_regression.h"
#include "remote/remote_system.h"
#include "util/properties.h"
#include "util/status.h"

namespace intellisphere::core {

/// The sub-operators of Figure 5.
enum class SubOpKind {
  // Basic (mandatory).
  kReadDfs,     ///< rD: read a record from the distributed file system
  kWriteDfs,    ///< wD: write a record to the distributed file system
  kReadLocal,   ///< rL: read a record from the local file system
  kWriteLocal,  ///< wL: write a record to the local file system
  kShuffle,     ///< f: shuffle a record between machines
  kBroadcast,   ///< b: broadcast a record to all machines
  // Specific (optional).
  kSort,       ///< o: main-memory sort cost per record per comparison
  kScan,       ///< c: main-memory scan cost per record
  kHashBuild,  ///< hI: insert a record into a hash table (two regimes)
  kHashProbe,  ///< hP: probe a hash table
  kRecMerge,   ///< m: merge two records
};

const char* SubOpKindName(SubOpKind kind);

/// All Figure-5 sub-ops, basic first.
std::vector<SubOpKind> AllSubOpKinds();
bool IsBasicSubOp(SubOpKind kind);

/// A calibrated sub-op: per-record seconds as a linear function of record
/// size. Hash build carries a second regime line used when the build input
/// does not fit in task memory (Fig 13(f)).
class SubOpModel {
 public:
  SubOpModel() = default;
  explicit SubOpModel(ml::LinearRegression line) : line_(std::move(line)) {}
  SubOpModel(ml::LinearRegression fit_line, ml::LinearRegression spill_line)
      : line_(std::move(fit_line)),
        spill_line_(std::move(spill_line)),
        two_regime_(true) {}

  /// Per-record cost in seconds. `fits_in_memory` selects the regime for
  /// two-regime models and is ignored otherwise. Never negative.
  [[nodiscard]] Result<double> PerRecordSeconds(int64_t record_bytes,
                                                bool fits_in_memory = true) const;

  bool two_regime() const { return two_regime_; }
  const ml::LinearRegression& line() const { return line_; }
  const ml::LinearRegression& spill_line() const { return spill_line_; }

  void Save(const std::string& prefix, Properties* props) const;
  [[nodiscard]] static Result<SubOpModel> Load(const std::string& prefix,
                                               const Properties& props);

 private:
  ml::LinearRegression line_;
  ml::LinearRegression spill_line_;
  bool two_regime_ = false;
};

/// Openbox structural knowledge injected by technical experts when the
/// remote system registers (part of its profile).
struct OpenboxInfo {
  int64_t dfs_block_bytes = 128LL * 1024 * 1024;
  int total_slots = 6;
  int num_worker_nodes = 3;
  double task_memory_bytes = 0.0;
  /// In-memory expansion of hash tables relative to raw input bytes.
  double hash_table_expansion = 1.5;
  /// Largest raw right-side bytes the engine's planner will broadcast.
  double broadcast_threshold_bytes = 0.0;
  /// Hot-key fraction at which the engine switches to its skew handling.
  double skew_threshold = 0.30;
  /// Reduce tasks per shuffle stage (0 = one per slot).
  int num_reducers = 0;
  /// Fixed job overhead model: seconds = intercept + per_wave * task waves
  /// (calibrated from no-op probes).
  double job_overhead_intercept = 0.0;
  double job_overhead_per_wave = 0.0;

  int64_t NumBlocks(int64_t bytes) const;
  int64_t Waves(int64_t num_tasks) const;
  int Reducers() const { return num_reducers > 0 ? num_reducers : total_slots; }
  /// Whether a hash table over `raw_bytes` fits one task's memory.
  bool HashFits(double raw_bytes) const;

  void Save(const std::string& prefix, Properties* props) const;
  [[nodiscard]] static Result<OpenboxInfo> Load(const std::string& prefix,
                                                const Properties& props);
};

/// The calibrated sub-op models of one remote system plus its openbox info.
class SubOpCatalog {
 public:
  SubOpCatalog() = default;
  explicit SubOpCatalog(OpenboxInfo info) : info_(info) {}

  void Put(SubOpKind kind, SubOpModel model);
  bool Contains(SubOpKind kind) const;
  [[nodiscard]] Result<const SubOpModel*> Get(SubOpKind kind) const;

  /// Per-record seconds of a sub-op at the given record size. When a
  /// Specific (optional) sub-op was never calibrated, a rough built-in
  /// default is used instead — Section 4: missing them "is not a hinder
  /// ... IntelliSphere can provide rough default values for them". Missing
  /// Basic sub-ops remain a NotFound error.
  [[nodiscard]] Result<double> Cost(SubOpKind kind, int64_t record_bytes,
                                    bool fits_in_memory = true) const;

  /// The rough built-in default for a Specific sub-op, in seconds per
  /// record; InvalidArgument for Basic sub-ops (they are mandatory).
  [[nodiscard]] static Result<double> DefaultSpecificCost(SubOpKind kind,
                                                          int64_t record_bytes);

  const OpenboxInfo& info() const { return info_; }
  OpenboxInfo& info_mutable() { return info_; }

  /// Whether every Basic sub-op has a model — the minimum for the sub-op
  /// approach to make sense (Section 4).
  bool HasAllBasic() const;

  void Save(const std::string& prefix, Properties* props) const;
  [[nodiscard]] static Result<SubOpCatalog> Load(const std::string& prefix,
                                                 const Properties& props);

 private:
  OpenboxInfo info_;
  std::map<SubOpKind, SubOpModel> models_;
};

/// Calibration grid and bookkeeping.
struct CalibrationOptions {
  std::vector<int64_t> record_sizes = {40, 100, 250, 500, 1000};
  std::vector<int64_t> record_counts = {1000000, 2000000, 4000000, 8000000};
};

/// Result of a calibration run.
struct CalibrationRun {
  SubOpCatalog catalog;
  int64_t probe_queries = 0;
  double total_seconds = 0.0;  ///< simulated training time (Fig 13(a))
  /// Grid cells skipped because a probe failed transiently (the whole
  /// cell is dropped: the subtraction chains need all 12 probes).
  int64_t failed_cells = 0;
  /// Specific sub-ops left uncalibrated (too few surviving measurements);
  /// the catalog serves its rough built-in default for them — provenance
  /// for "this number is a default, not a fit".
  std::vector<SubOpKind> defaulted;
  /// Raw per-record measurements per sub-op: (record_bytes, seconds,
  /// record_count, fits_in_memory) — the scatter behind Fig 7/13.
  struct Point {
    int64_t record_bytes = 0;
    int64_t record_count = 0;
    double seconds_per_record = 0.0;
    bool fits_in_memory = true;
  };
  std::map<SubOpKind, std::vector<Point>> points;
};

/// Runs the probe workload on an openbox system and fits all sub-op models.
/// `info` supplies the structural knowledge (block size, slots, memory);
/// its overhead model fields are filled in by the calibration itself.
///
/// Fault tolerance: a grid cell whose probe fails with a retryable error
/// (Unavailable / DeadlineExceeded) is skipped and counted in
/// `failed_cells`; non-retryable probe errors abort. Basic sub-ops must
/// still fit from the surviving cells (FailedPrecondition otherwise);
/// Specific sub-ops that cannot be fitted fall back to their built-in
/// defaults and are listed in `defaulted`.
[[nodiscard]] Result<CalibrationRun> CalibrateSubOps(remote::RemoteSystem* system,
                                                     OpenboxInfo info,
                                                     const CalibrationOptions& options);

}  // namespace intellisphere::core

#endif  // INTELLISPHERE_CORE_SUB_OP_H_
