#include "core/formulas.h"

#include <algorithm>
#include <cmath>

namespace intellisphere::core {

namespace {

using rel::AggQuery;
using rel::JoinQuery;

int64_t ShuffleRecBytes(int64_t projected_bytes) {
  return std::max<int64_t>(4, projected_bytes);
}

double Log2Rows(double rows) {
  return std::max(1.0, std::log2(std::max(2.0, rows)));
}

/// Full-block row count of a relation (Figure 6's |Block(R)|).
double BlockRows(const rel::RelationStats& r, const OpenboxInfo& info) {
  double per_block = static_cast<double>(info.dfs_block_bytes) /
                     static_cast<double>(std::max<int64_t>(1, r.row_bytes));
  return std::min(std::max(1.0, per_block),
                  static_cast<double>(r.num_rows));
}

double Overhead(const OpenboxInfo& info, double waves) {
  return info.job_overhead_intercept + info.job_overhead_per_wave * waves;
}

bool BroadcastApplicable(const JoinQuery& q, const OpenboxInfo& info) {
  double s_raw = static_cast<double>(q.right.num_rows) *
                 static_cast<double>(q.right.row_bytes);
  if (info.broadcast_threshold_bytes > 0.0) {
    return s_raw <= info.broadcast_threshold_bytes;
  }
  return info.HashFits(s_raw);
}

// --- Closed-form estimates shared between formulas (skew join reuses the
// --- shuffle and broadcast forms on scaled inputs).

Result<double> EstimateBroadcastJoin(const JoinQuery& q,
                                     const SubOpCatalog& cat) {
  const OpenboxInfo& info = cat.info();
  double s_rows = static_cast<double>(q.right.num_rows);
  double s_raw = s_rows * static_cast<double>(q.right.row_bytes);
  bool fits = info.HashFits(s_raw);
  int64_t tasks = info.NumBlocks(q.left.num_rows * q.left.row_bytes);
  double waves = static_cast<double>(info.Waves(tasks));
  double blk_r = BlockRows(q.left, info);
  double task_out =
      static_cast<double>(q.output_rows) / static_cast<double>(tasks);
  int64_t sb = q.right.row_bytes, lb = q.left.row_bytes;
  int64_t ob = q.OutputRowBytes();

  ISPHERE_ASSIGN_OR_RETURN(double rD, cat.Cost(SubOpKind::kReadDfs, sb));
  ISPHERE_ASSIGN_OR_RETURN(double b, cat.Cost(SubOpKind::kBroadcast, sb));
  ISPHERE_ASSIGN_OR_RETURN(double rLs, cat.Cost(SubOpKind::kReadLocal, sb));
  ISPHERE_ASSIGN_OR_RETURN(double hI,
                           cat.Cost(SubOpKind::kHashBuild, sb, fits));
  ISPHERE_ASSIGN_OR_RETURN(double rLl, cat.Cost(SubOpKind::kReadLocal, lb));
  ISPHERE_ASSIGN_OR_RETURN(double hP, cat.Cost(SubOpKind::kHashProbe, lb));
  ISPHERE_ASSIGN_OR_RETURN(double wD, cat.Cost(SubOpKind::kWriteDfs, ob));

  // Figure 6: rD*|S| + b*|S| + NumTaskWaves * (rL*|S| + hI*|S| +
  // rL*|Block(R)| + hP*|Block(R)| + wD*|TaskOutput|).
  double cost = rD * s_rows + b * s_rows +
                waves * (rLs * s_rows + hI * s_rows + rLl * blk_r +
                         hP * blk_r + wD * task_out);
  return cost + Overhead(info, waves);
}

Result<double> EstimateShuffleJoin(const JoinQuery& q,
                                   const SubOpCatalog& cat) {
  const OpenboxInfo& info = cat.info();
  int64_t lsh = ShuffleRecBytes(q.left_projected_bytes);
  int64_t rsh = ShuffleRecBytes(q.right_projected_bytes);
  int64_t ob = q.OutputRowBytes();

  // Both relations' map tasks run in one stage sharing the slots, so wave
  // accounting applies to the combined task set: waves * mean task time.
  int64_t tasks_l = info.NumBlocks(q.left.num_rows * q.left.row_bytes);
  int64_t tasks_r = info.NumBlocks(q.right.num_rows * q.right.row_bytes);
  double map_waves = static_cast<double>(info.Waves(tasks_l + tasks_r));
  auto map_work = [&](const rel::RelationStats& r, int64_t tasks,
                      int64_t shuffle_bytes) -> Result<double> {
    double blk = BlockRows(r, info);
    ISPHERE_ASSIGN_OR_RETURN(double rL,
                             cat.Cost(SubOpKind::kReadLocal, r.row_bytes));
    ISPHERE_ASSIGN_OR_RETURN(double wL,
                             cat.Cost(SubOpKind::kWriteLocal, shuffle_bytes));
    ISPHERE_ASSIGN_OR_RETURN(double f,
                             cat.Cost(SubOpKind::kShuffle, shuffle_bytes));
    return static_cast<double>(tasks) * blk * (rL + wL + f);
  };
  ISPHERE_ASSIGN_OR_RETURN(double work_l, map_work(q.left, tasks_l, lsh));
  ISPHERE_ASSIGN_OR_RETURN(double work_r, map_work(q.right, tasks_r, rsh));
  double map_cost = map_waves * (work_l + work_r) /
                    static_cast<double>(tasks_l + tasks_r);

  double red = static_cast<double>(info.Reducers());
  double lpr = static_cast<double>(q.left.num_rows) / red;
  double rpr = static_cast<double>(q.right.num_rows) / red;
  double opr = static_cast<double>(q.output_rows) / red;
  double red_waves =
      static_cast<double>(info.Waves(static_cast<int64_t>(red)));
  ISPHERE_ASSIGN_OR_RETURN(double ol, cat.Cost(SubOpKind::kSort, lsh));
  ISPHERE_ASSIGN_OR_RETURN(double orr, cat.Cost(SubOpKind::kSort, rsh));
  ISPHERE_ASSIGN_OR_RETURN(double m, cat.Cost(SubOpKind::kRecMerge, ob));
  ISPHERE_ASSIGN_OR_RETURN(double wD, cat.Cost(SubOpKind::kWriteDfs, ob));
  double reduce = red_waves * (ol * lpr * Log2Rows(lpr) +
                               orr * rpr * Log2Rows(rpr) + m * opr + wD * opr);

  return map_cost + reduce + Overhead(info, map_waves + red_waves);
}

Result<double> EstimateBucketMapJoin(const JoinQuery& q,
                                     const SubOpCatalog& cat) {
  const OpenboxInfo& info = cat.info();
  int64_t s_total = q.right.num_rows * q.right.row_bytes;
  int64_t buckets = std::max<int64_t>(1, info.NumBlocks(s_total));
  double bucket_rows = static_cast<double>(q.right.num_rows) /
                       static_cast<double>(buckets);
  bool fits = info.HashFits(bucket_rows *
                            static_cast<double>(q.right.row_bytes));
  int64_t tasks = info.NumBlocks(q.left.num_rows * q.left.row_bytes);
  double waves = static_cast<double>(info.Waves(tasks));
  double blk_r = BlockRows(q.left, info);
  double task_out =
      static_cast<double>(q.output_rows) / static_cast<double>(tasks);
  int64_t sb = q.right.row_bytes, lb = q.left.row_bytes;
  int64_t ob = q.OutputRowBytes();

  ISPHERE_ASSIGN_OR_RETURN(double rD, cat.Cost(SubOpKind::kReadDfs, sb));
  ISPHERE_ASSIGN_OR_RETURN(double hI,
                           cat.Cost(SubOpKind::kHashBuild, sb, fits));
  ISPHERE_ASSIGN_OR_RETURN(double rLl, cat.Cost(SubOpKind::kReadLocal, lb));
  ISPHERE_ASSIGN_OR_RETURN(double hP, cat.Cost(SubOpKind::kHashProbe, lb));
  ISPHERE_ASSIGN_OR_RETURN(double wD, cat.Cost(SubOpKind::kWriteDfs, ob));

  double per_task = rD * bucket_rows + hI * bucket_rows + rLl * blk_r +
                    hP * blk_r + wD * task_out;
  return waves * per_task + Overhead(info, waves);
}

Result<double> EstimateSortMergeBucketJoin(const JoinQuery& q,
                                           const SubOpCatalog& cat) {
  const OpenboxInfo& info = cat.info();
  int64_t s_total = q.right.num_rows * q.right.row_bytes;
  int64_t buckets = std::max<int64_t>(1, info.NumBlocks(s_total));
  double bucket_rows = static_cast<double>(q.right.num_rows) /
                       static_cast<double>(buckets);
  int64_t tasks = info.NumBlocks(q.left.num_rows * q.left.row_bytes);
  double waves = static_cast<double>(info.Waves(tasks));
  double blk_r = BlockRows(q.left, info);
  double task_out =
      static_cast<double>(q.output_rows) / static_cast<double>(tasks);
  int64_t sb = q.right.row_bytes, lb = q.left.row_bytes;
  int64_t ob = q.OutputRowBytes();

  ISPHERE_ASSIGN_OR_RETURN(double rD, cat.Cost(SubOpKind::kReadDfs, sb));
  ISPHERE_ASSIGN_OR_RETURN(double cs, cat.Cost(SubOpKind::kScan, sb));
  ISPHERE_ASSIGN_OR_RETURN(double rLl, cat.Cost(SubOpKind::kReadLocal, lb));
  ISPHERE_ASSIGN_OR_RETURN(double cl, cat.Cost(SubOpKind::kScan, lb));
  ISPHERE_ASSIGN_OR_RETURN(double m, cat.Cost(SubOpKind::kRecMerge, ob));
  ISPHERE_ASSIGN_OR_RETURN(double wD, cat.Cost(SubOpKind::kWriteDfs, ob));

  double per_task = (rD + cs) * bucket_rows + (rLl + cl) * blk_r +
                    (m + wD) * task_out;
  return waves * per_task + Overhead(info, waves);
}

JoinQuery ScaleJoin(const JoinQuery& base, double f) {
  JoinQuery s = base;
  auto scale = [f](int64_t v) {
    return std::max<int64_t>(
        1, static_cast<int64_t>(f * static_cast<double>(v)));
  };
  s.left.num_rows = scale(base.left.num_rows);
  s.right.num_rows = scale(base.right.num_rows);
  s.output_rows = std::max<int64_t>(
      0, static_cast<int64_t>(f * static_cast<double>(base.output_rows)));
  s.hot_key_fraction = 0.0;
  return s;
}

Result<double> EstimateSkewJoin(const JoinQuery& q, const SubOpCatalog& cat) {
  double h = std::clamp(q.hot_key_fraction, 0.0, 0.95);
  ISPHERE_ASSIGN_OR_RETURN(double cold,
                           EstimateShuffleJoin(ScaleJoin(q, 1.0 - h), cat));
  ISPHERE_ASSIGN_OR_RETURN(double hot,
                           EstimateBroadcastJoin(ScaleJoin(q, h), cat));
  return cold + hot;
}

Result<double> EstimateHashAgg(const AggQuery& q, const SubOpCatalog& cat) {
  const OpenboxInfo& info = cat.info();
  int64_t tasks = info.NumBlocks(q.input.num_rows * q.input.row_bytes);
  double waves = static_cast<double>(info.Waves(tasks));
  double blk = BlockRows(q.input, info);
  double partial = std::min(blk, static_cast<double>(q.output_rows));
  int64_t ib = q.input.row_bytes, ob = q.output_row_bytes;

  ISPHERE_ASSIGN_OR_RETURN(double rL, cat.Cost(SubOpKind::kReadLocal, ib));
  ISPHERE_ASSIGN_OR_RETURN(double hP, cat.Cost(SubOpKind::kHashProbe, ob));
  ISPHERE_ASSIGN_OR_RETURN(double c8, cat.Cost(SubOpKind::kScan, 8));
  ISPHERE_ASSIGN_OR_RETURN(double f, cat.Cost(SubOpKind::kShuffle, ob));
  double map = waves * (blk * (rL + hP + c8 * q.num_aggregates) +
                        partial * f);

  double red = static_cast<double>(info.Reducers());
  double partials_total = std::min(
      static_cast<double>(q.input.num_rows),
      static_cast<double>(q.output_rows) * static_cast<double>(tasks));
  double ppr = partials_total / red;
  double opr = static_cast<double>(q.output_rows) / red;
  double red_waves =
      static_cast<double>(info.Waves(static_cast<int64_t>(red)));
  // Partial combining in the reducers is a group-table probe plus one
  // update per aggregate (not a full record merge).
  ISPHERE_ASSIGN_OR_RETURN(double wD, cat.Cost(SubOpKind::kWriteDfs, ob));
  double reduce =
      red_waves * ((hP + c8 * q.num_aggregates) * ppr + wD * opr);
  return map + reduce + Overhead(info, waves + red_waves);
}

Result<double> EstimateSortAgg(const AggQuery& q, const SubOpCatalog& cat) {
  const OpenboxInfo& info = cat.info();
  int64_t tasks = info.NumBlocks(q.input.num_rows * q.input.row_bytes);
  double waves = static_cast<double>(info.Waves(tasks));
  double blk = BlockRows(q.input, info);
  int64_t ib = q.input.row_bytes, ob = q.output_row_bytes;

  ISPHERE_ASSIGN_OR_RETURN(double rL, cat.Cost(SubOpKind::kReadLocal, ib));
  ISPHERE_ASSIGN_OR_RETURN(double o, cat.Cost(SubOpKind::kSort, ob));
  ISPHERE_ASSIGN_OR_RETURN(double f, cat.Cost(SubOpKind::kShuffle, ob));
  double map = waves * blk * (rL + o * Log2Rows(blk) + f);

  double red = static_cast<double>(info.Reducers());
  double rpr = static_cast<double>(q.input.num_rows) / red;
  double opr = static_cast<double>(q.output_rows) / red;
  double red_waves =
      static_cast<double>(info.Waves(static_cast<int64_t>(red)));
  ISPHERE_ASSIGN_OR_RETURN(double c8, cat.Cost(SubOpKind::kScan, 8));
  ISPHERE_ASSIGN_OR_RETURN(double wD, cat.Cost(SubOpKind::kWriteDfs, ob));
  double reduce = red_waves * (o * Log2Rows(rpr) * rpr +
                               c8 * q.num_aggregates * rpr + wD * opr);
  return map + reduce + Overhead(info, waves + red_waves);
}

// --- Formula classes.

class ShuffleJoinFormula : public JoinFormula {
 public:
  std::string name() const override { return "shuffle_join"; }
  const char* applicability_rule() const override {
    return "requires an equi-join with hot-key fraction below the skew "
           "threshold";
  }
  bool Applicable(const JoinQuery& q, const OpenboxInfo& info) const override {
    return q.is_equi_join && q.hot_key_fraction < info.skew_threshold;
  }
  Result<double> Estimate(const JoinQuery& q,
                          const SubOpCatalog& cat) const override {
    return EstimateShuffleJoin(q, cat);
  }
};

class BroadcastJoinFormula : public JoinFormula {
 public:
  std::string name() const override { return "broadcast_join"; }
  const char* applicability_rule() const override {
    return "requires an equi-join with the right side under the broadcast "
           "threshold";
  }
  bool Applicable(const JoinQuery& q, const OpenboxInfo& info) const override {
    // "If both join relations are quite large, then the choices of
    // Broadcast Join ... can be eliminated."
    return q.is_equi_join && BroadcastApplicable(q, info);
  }
  Result<double> Estimate(const JoinQuery& q,
                          const SubOpCatalog& cat) const override {
    return EstimateBroadcastJoin(q, cat);
  }
};

class BucketMapJoinFormula : public JoinFormula {
 public:
  std::string name() const override { return "bucket_map_join"; }
  const char* applicability_rule() const override {
    return "requires an equi-join with the right side bucketed on the join "
           "key";
  }
  bool Applicable(const JoinQuery& q, const OpenboxInfo&) const override {
    // "If the relation ... is not partitioned by the join key ... then the
    // choices of Bucket Map Join ... can be eliminated."
    return q.is_equi_join && q.right_bucketed_on_key;
  }
  Result<double> Estimate(const JoinQuery& q,
                          const SubOpCatalog& cat) const override {
    return EstimateBucketMapJoin(q, cat);
  }
};

class SortMergeBucketJoinFormula : public JoinFormula {
 public:
  std::string name() const override { return "sort_merge_bucket_join"; }
  const char* applicability_rule() const override {
    return "requires an equi-join with both sides bucketed on the join key";
  }
  bool Applicable(const JoinQuery& q, const OpenboxInfo&) const override {
    return q.is_equi_join && q.right_bucketed_on_key &&
           q.left_bucketed_on_key;
  }
  Result<double> Estimate(const JoinQuery& q,
                          const SubOpCatalog& cat) const override {
    return EstimateSortMergeBucketJoin(q, cat);
  }
};

class SkewJoinFormula : public JoinFormula {
 public:
  std::string name() const override { return "skew_join"; }
  const char* applicability_rule() const override {
    return "requires an equi-join with hot-key fraction at or above the "
           "skew threshold";
  }
  bool Applicable(const JoinQuery& q, const OpenboxInfo& info) const override {
    return q.is_equi_join && q.hot_key_fraction >= info.skew_threshold;
  }
  Result<double> Estimate(const JoinQuery& q,
                          const SubOpCatalog& cat) const override {
    return EstimateSkewJoin(q, cat);
  }
};

Result<double> EstimateMapOnlyScan(const rel::ScanQuery& q,
                                   const SubOpCatalog& cat) {
  const OpenboxInfo& info = cat.info();
  int64_t tasks = info.NumBlocks(q.input.num_rows * q.input.row_bytes);
  double waves = static_cast<double>(info.Waves(tasks));
  double blk = BlockRows(q.input, info);
  double task_out =
      static_cast<double>(q.output_rows) / static_cast<double>(tasks);
  ISPHERE_ASSIGN_OR_RETURN(double rL,
                           cat.Cost(SubOpKind::kReadLocal, q.input.row_bytes));
  ISPHERE_ASSIGN_OR_RETURN(double c,
                           cat.Cost(SubOpKind::kScan, q.input.row_bytes));
  ISPHERE_ASSIGN_OR_RETURN(double wD,
                           cat.Cost(SubOpKind::kWriteDfs, q.projected_bytes));
  return waves * (blk * (rL + c) + wD * task_out) + Overhead(info, waves);
}

class MapOnlyScanFormula : public ScanFormula {
 public:
  std::string name() const override { return "map_only_scan"; }
  const char* applicability_rule() const override {
    return "always applicable";
  }
  bool Applicable(const rel::ScanQuery&, const OpenboxInfo&) const override {
    return true;
  }
  Result<double> Estimate(const rel::ScanQuery& q,
                          const SubOpCatalog& cat) const override {
    return EstimateMapOnlyScan(q, cat);
  }
};

class HashAggFormula : public AggFormula {
 public:
  std::string name() const override { return "hash_aggregation"; }
  const char* applicability_rule() const override {
    return "requires the group table to fit in task memory";
  }
  bool Applicable(const AggQuery& q, const OpenboxInfo& info) const override {
    return info.HashFits(static_cast<double>(q.output_rows) *
                         static_cast<double>(q.output_row_bytes));
  }
  Result<double> Estimate(const AggQuery& q,
                          const SubOpCatalog& cat) const override {
    return EstimateHashAgg(q, cat);
  }
};

class SortAggFormula : public AggFormula {
 public:
  std::string name() const override { return "sort_aggregation"; }
  const char* applicability_rule() const override {
    return "applies when the group table exceeds task memory";
  }
  bool Applicable(const AggQuery& q, const OpenboxInfo& info) const override {
    return !info.HashFits(static_cast<double>(q.output_rows) *
                          static_cast<double>(q.output_row_bytes));
  }
  Result<double> Estimate(const AggQuery& q,
                          const SubOpCatalog& cat) const override {
    return EstimateSortAgg(q, cat);
  }
};

}  // namespace

const char* ChoicePolicyName(ChoicePolicy policy) {
  switch (policy) {
    case ChoicePolicy::kWorstCase:
      return "worst_case";
    case ChoicePolicy::kAverage:
      return "average";
    case ChoicePolicy::kInHouseComparable:
      return "in_house_comparable";
  }
  return "unknown";
}

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kForeground:
      return "foreground";
    case RequestPriority::kBackground:
      return "background";
  }
  return "unknown";
}

std::vector<std::unique_ptr<JoinFormula>> HiveJoinFormulas() {
  std::vector<std::unique_ptr<JoinFormula>> v;
  v.push_back(std::make_unique<ShuffleJoinFormula>());
  v.push_back(std::make_unique<BroadcastJoinFormula>());
  v.push_back(std::make_unique<BucketMapJoinFormula>());
  v.push_back(std::make_unique<SortMergeBucketJoinFormula>());
  v.push_back(std::make_unique<SkewJoinFormula>());
  return v;
}

std::vector<std::unique_ptr<AggFormula>> HiveAggFormulas() {
  std::vector<std::unique_ptr<AggFormula>> v;
  v.push_back(std::make_unique<HashAggFormula>());
  v.push_back(std::make_unique<SortAggFormula>());
  return v;
}

std::vector<std::unique_ptr<ScanFormula>> HiveScanFormulas() {
  std::vector<std::unique_ptr<ScanFormula>> v;
  v.push_back(std::make_unique<MapOnlyScanFormula>());
  return v;
}

SubOpCostEstimator::SubOpCostEstimator(
    SubOpCatalog catalog, std::vector<std::unique_ptr<JoinFormula>> joins,
    std::vector<std::unique_ptr<AggFormula>> aggs,
    std::vector<std::unique_ptr<ScanFormula>> scans, ChoicePolicy policy)
    : catalog_(std::move(catalog)),
      join_formulas_(std::move(joins)),
      agg_formulas_(std::move(aggs)),
      scan_formulas_(std::move(scans)),
      policy_(policy) {}

Result<SubOpCostEstimator> SubOpCostEstimator::ForHive(SubOpCatalog catalog,
                                                       ChoicePolicy policy) {
  if (!catalog.HasAllBasic()) {
    return Status::FailedPrecondition(
        "sub-op costing requires all Basic sub-op models (Figure 5)");
  }
  return SubOpCostEstimator(std::move(catalog), HiveJoinFormulas(),
                            HiveAggFormulas(), HiveScanFormulas(), policy);
}

Result<SubOpEstimate> SubOpCostEstimator::Resolve(SubOpEstimate est,
                                                  ChoicePolicy policy) const {
  const std::vector<AlgorithmEstimate>& candidates = est.candidates;
  if (candidates.empty()) {
    std::string msg = "no physical algorithm is applicable to this operator";
    // With provenance collected, fold the per-algorithm kill reasons into
    // the status so planners can report *why* a host was eliminated.
    for (const auto& e : est.eliminated) {
      msg += "; " + e.algorithm + ": " + e.reason;
    }
    return Status::FailedPrecondition(msg);
  }
  est.policy_used = policy;
  switch (policy) {
    case ChoicePolicy::kWorstCase: {
      auto it = std::max_element(candidates.begin(), candidates.end(),
                                 [](const auto& a, const auto& b) {
                                   return a.seconds < b.seconds;
                                 });
      est.seconds = it->seconds;
      est.chosen_algorithm = it->algorithm;
      break;
    }
    case ChoicePolicy::kAverage: {
      double sum = 0.0;
      for (const auto& c : candidates) sum += c.seconds;
      est.seconds = sum / static_cast<double>(candidates.size());
      est.chosen_algorithm =
          candidates.size() == 1 ? candidates[0].algorithm : "";
      break;
    }
    case ChoicePolicy::kInHouseComparable: {
      auto it = std::min_element(candidates.begin(), candidates.end(),
                                 [](const auto& a, const auto& b) {
                                   return a.seconds < b.seconds;
                                 });
      est.seconds = it->seconds;
      est.chosen_algorithm = it->algorithm;
      break;
    }
  }
  return est;
}

namespace {

/// The shared applicability-filter + estimate loop. Gathers survivors into
/// est.candidates and eliminations into est.eliminated (reasons only under
/// provenance), emitting one formula span per survivor when tracing.
template <typename Query, typename FormulaVec>
Result<SubOpEstimate> GatherCandidates(const FormulaVec& formulas,
                                       const Query& q,
                                       const SubOpCatalog& catalog,
                                       const EstimateContext& ctx) {
  SubOpEstimate est;
  const bool provenance = ctx.provenance();
  for (const auto& f : formulas) {
    if (!f->Applicable(q, catalog.info())) {
      ++est.eliminated_count;
      if (provenance) {
        est.eliminated.push_back({f->name(), f->applicability_rule()});
      }
      continue;
    }
    ISPHERE_ASSIGN_OR_RETURN(double s, f->Estimate(q, catalog));
    if (ctx.tracing()) {
      ctx.StartSpan("estimate.sub_op.formula")
          .SetString("algorithm", f->name())
          .SetDouble("seconds", s);
    }
    est.candidates.push_back({f->name(), s});
  }
  return est;
}

}  // namespace

Result<SubOpEstimate> SubOpCostEstimator::EstimateJoin(
    const rel::JoinQuery& q, const EstimateContext& ctx) const {
  ISPHERE_RETURN_NOT_OK(q.Validate());
  ISPHERE_ASSIGN_OR_RETURN(SubOpEstimate est,
                           GatherCandidates(join_formulas_, q, catalog_, ctx));
  return Resolve(std::move(est), ctx.policy_override.value_or(policy_));
}

Result<SubOpEstimate> SubOpCostEstimator::EstimateAgg(
    const rel::AggQuery& q, const EstimateContext& ctx) const {
  ISPHERE_RETURN_NOT_OK(q.Validate());
  ISPHERE_ASSIGN_OR_RETURN(SubOpEstimate est,
                           GatherCandidates(agg_formulas_, q, catalog_, ctx));
  return Resolve(std::move(est), ctx.policy_override.value_or(policy_));
}

Result<SubOpEstimate> SubOpCostEstimator::EstimateScan(
    const rel::ScanQuery& q, const EstimateContext& ctx) const {
  ISPHERE_RETURN_NOT_OK(q.Validate());
  ISPHERE_ASSIGN_OR_RETURN(SubOpEstimate est,
                           GatherCandidates(scan_formulas_, q, catalog_, ctx));
  return Resolve(std::move(est), ctx.policy_override.value_or(policy_));
}

Result<SubOpEstimate> SubOpCostEstimator::Estimate(
    const rel::SqlOperator& op, const EstimateContext& ctx) const {
  switch (op.type) {
    case rel::OperatorType::kJoin:
      return EstimateJoin(op.join, ctx);
    case rel::OperatorType::kAggregation:
      return EstimateAgg(op.agg, ctx);
    case rel::OperatorType::kScan:
      return EstimateScan(op.scan, ctx);
  }
  return Status::Internal("unknown operator type");
}

Result<double> SubOpCostEstimator::EstimateJoinAlgorithm(
    const rel::JoinQuery& q, const std::string& algorithm) const {
  ISPHERE_RETURN_NOT_OK(q.Validate());
  for (const auto& f : join_formulas_) {
    if (f->name() == algorithm) return f->Estimate(q, catalog_);
  }
  return Status::NotFound("join formula '" + algorithm + "'");
}

Result<double> SubOpCostEstimator::EstimateAggAlgorithm(
    const rel::AggQuery& q, const std::string& algorithm) const {
  ISPHERE_RETURN_NOT_OK(q.Validate());
  for (const auto& f : agg_formulas_) {
    if (f->name() == algorithm) return f->Estimate(q, catalog_);
  }
  return Status::NotFound("aggregation formula '" + algorithm + "'");
}

}  // namespace intellisphere::core
