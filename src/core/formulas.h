// Analytical cost formulas composing sub-op models per physical algorithm
// (Section 4, Figure 6), plus the query-time machinery of the sub-op
// approach: applicability rules to eliminate inapplicable algorithms and a
// choice policy (worst-case / average / in-house-comparable) among the
// survivors.
//
// Each formula is the paper-style closed form: fixed driver-side work plus
// NumTaskWaves * (per-task work), plus the calibrated job-overhead model.
// The formulas deliberately use the idealized full-wave/full-block
// accounting of Figure 6 — the resulting slight overestimation relative to
// the real (simulated) engine matches the paper's observation that "the
// sub-op approach slightly tends to overestimate the cost".

#ifndef INTELLISPHERE_CORE_FORMULAS_H_
#define INTELLISPHERE_CORE_FORMULAS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimate_context.h"
#include "core/sub_op.h"
#include "relational/query.h"
#include "util/status.h"

namespace intellisphere::core {

/// A cost formula for one physical join algorithm.
class JoinFormula {
 public:
  virtual ~JoinFormula() = default;
  virtual std::string name() const = 0;
  /// Human-readable statement of the applicability rule — the elimination
  /// reason EXPLAIN reports when the rule kills this algorithm.
  virtual const char* applicability_rule() const = 0;
  /// Applicability rule (Section 4 "Usage"): can the remote system run this
  /// algorithm for this query?
  virtual bool Applicable(const rel::JoinQuery& q,
                          const OpenboxInfo& info) const = 0;
  /// Estimated elapsed seconds from the calibrated sub-ops.
  [[nodiscard]] virtual Result<double> Estimate(const rel::JoinQuery& q,
                                                const SubOpCatalog& catalog) const = 0;
};

/// A cost formula for one aggregation algorithm.
class AggFormula {
 public:
  virtual ~AggFormula() = default;
  virtual std::string name() const = 0;
  virtual const char* applicability_rule() const = 0;
  virtual bool Applicable(const rel::AggQuery& q,
                          const OpenboxInfo& info) const = 0;
  [[nodiscard]] virtual Result<double> Estimate(const rel::AggQuery& q,
                                                const SubOpCatalog& catalog) const = 0;
};

/// A cost formula for one selection/projection algorithm.
class ScanFormula {
 public:
  virtual ~ScanFormula() = default;
  virtual std::string name() const = 0;
  virtual const char* applicability_rule() const = 0;
  virtual bool Applicable(const rel::ScanQuery& q,
                          const OpenboxInfo& info) const = 0;
  [[nodiscard]] virtual Result<double> Estimate(const rel::ScanQuery& q,
                                                const SubOpCatalog& catalog) const = 0;
};

/// Builds the Hive formula set (the paper's proof-of-concept engine):
/// shuffle, broadcast, bucket-map, sort-merge-bucket, and skew joins.
std::vector<std::unique_ptr<JoinFormula>> HiveJoinFormulas();

/// Hash and sort aggregation formulas.
std::vector<std::unique_ptr<AggFormula>> HiveAggFormulas();

/// The map-only selection/projection formula.
std::vector<std::unique_ptr<ScanFormula>> HiveScanFormulas();

/// One candidate algorithm's estimate.
struct AlgorithmEstimate {
  std::string algorithm;
  double seconds = 0.0;
};

/// An algorithm an applicability rule eliminated, with the rule text that
/// killed it. Collected only at EstimateDetail::kProvenance.
struct EliminatedAlgorithm {
  std::string algorithm;
  std::string reason;
};

/// The sub-op approach's final estimate with diagnostics.
struct SubOpEstimate {
  double seconds = 0.0;
  /// The algorithm the policy settled on ("" for kAverage over several).
  std::string chosen_algorithm;
  /// The policy that resolved the candidates (reflects any per-call
  /// override).
  ChoicePolicy policy_used = ChoicePolicy::kWorstCase;
  std::vector<AlgorithmEstimate> candidates;
  /// How many algorithms the applicability rules eliminated. Always
  /// maintained — it is a plain tally.
  int eliminated_count = 0;
  /// The eliminated algorithms with reasons; filled only when the context
  /// asks for provenance (string building stays off the fast path).
  std::vector<EliminatedAlgorithm> eliminated;
};

/// Query-time estimator of the sub-op costing approach.
class SubOpCostEstimator {
 public:
  /// Takes the calibrated catalog and the formula sets for the remote
  /// system's engine family.
  SubOpCostEstimator(SubOpCatalog catalog,
                     std::vector<std::unique_ptr<JoinFormula>> join_formulas,
                     std::vector<std::unique_ptr<AggFormula>> agg_formulas,
                     std::vector<std::unique_ptr<ScanFormula>> scan_formulas,
                     ChoicePolicy policy);

  /// Convenience: Hive formula set.
  [[nodiscard]] static Result<SubOpCostEstimator> ForHive(
      SubOpCatalog catalog, ChoicePolicy policy = ChoicePolicy::kWorstCase);

  /// Applies applicability rules, estimates every surviving algorithm, and
  /// resolves with the policy (or `ctx.policy_override`). Emits one
  /// `estimate.sub_op.formula` span per surviving algorithm when the
  /// context carries a trace sink. FailedPrecondition when no algorithm
  /// survives.
  [[nodiscard]] Result<SubOpEstimate> EstimateJoin(
      const rel::JoinQuery& q, const EstimateContext& ctx = {}) const;
  [[nodiscard]] Result<SubOpEstimate> EstimateAgg(
      const rel::AggQuery& q, const EstimateContext& ctx = {}) const;
  [[nodiscard]] Result<SubOpEstimate> EstimateScan(
      const rel::ScanQuery& q, const EstimateContext& ctx = {}) const;
  [[nodiscard]] Result<SubOpEstimate> Estimate(
      const rel::SqlOperator& op, const EstimateContext& ctx = {}) const;

  /// Estimates one named algorithm regardless of the policy (used by the
  /// per-algorithm accuracy benchmarks, e.g. Fig 13(g)).
  [[nodiscard]] Result<double> EstimateJoinAlgorithm(const rel::JoinQuery& q,
                                                     const std::string& algorithm) const;
  [[nodiscard]] Result<double> EstimateAggAlgorithm(const rel::AggQuery& q,
                                                    const std::string& algorithm) const;

  const SubOpCatalog& catalog() const { return catalog_; }
  ChoicePolicy policy() const { return policy_; }
  void set_policy(ChoicePolicy policy) { policy_ = policy; }

 private:
  [[nodiscard]] Result<SubOpEstimate> Resolve(SubOpEstimate est,
                                              ChoicePolicy policy) const;

  SubOpCatalog catalog_;
  std::vector<std::unique_ptr<JoinFormula>> join_formulas_;
  std::vector<std::unique_ptr<AggFormula>> agg_formulas_;
  std::vector<std::unique_ptr<ScanFormula>> scan_formulas_;
  ChoicePolicy policy_;
};

}  // namespace intellisphere::core

#endif  // INTELLISPHERE_CORE_FORMULAS_H_
