// Analytical cost formulas composing sub-op models per physical algorithm
// (Section 4, Figure 6), plus the query-time machinery of the sub-op
// approach: applicability rules to eliminate inapplicable algorithms and a
// choice policy (worst-case / average / in-house-comparable) among the
// survivors.
//
// Each formula is the paper-style closed form: fixed driver-side work plus
// NumTaskWaves * (per-task work), plus the calibrated job-overhead model.
// The formulas deliberately use the idealized full-wave/full-block
// accounting of Figure 6 — the resulting slight overestimation relative to
// the real (simulated) engine matches the paper's observation that "the
// sub-op approach slightly tends to overestimate the cost".

#ifndef INTELLISPHERE_CORE_FORMULAS_H_
#define INTELLISPHERE_CORE_FORMULAS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/sub_op.h"
#include "relational/query.h"
#include "util/status.h"

namespace intellisphere::core {

/// A cost formula for one physical join algorithm.
class JoinFormula {
 public:
  virtual ~JoinFormula() = default;
  virtual std::string name() const = 0;
  /// Applicability rule (Section 4 "Usage"): can the remote system run this
  /// algorithm for this query?
  virtual bool Applicable(const rel::JoinQuery& q,
                          const OpenboxInfo& info) const = 0;
  /// Estimated elapsed seconds from the calibrated sub-ops.
  [[nodiscard]] virtual Result<double> Estimate(const rel::JoinQuery& q,
                                                const SubOpCatalog& catalog) const = 0;
};

/// A cost formula for one aggregation algorithm.
class AggFormula {
 public:
  virtual ~AggFormula() = default;
  virtual std::string name() const = 0;
  virtual bool Applicable(const rel::AggQuery& q,
                          const OpenboxInfo& info) const = 0;
  [[nodiscard]] virtual Result<double> Estimate(const rel::AggQuery& q,
                                                const SubOpCatalog& catalog) const = 0;
};

/// A cost formula for one selection/projection algorithm.
class ScanFormula {
 public:
  virtual ~ScanFormula() = default;
  virtual std::string name() const = 0;
  virtual bool Applicable(const rel::ScanQuery& q,
                          const OpenboxInfo& info) const = 0;
  [[nodiscard]] virtual Result<double> Estimate(const rel::ScanQuery& q,
                                                const SubOpCatalog& catalog) const = 0;
};

/// Builds the Hive formula set (the paper's proof-of-concept engine):
/// shuffle, broadcast, bucket-map, sort-merge-bucket, and skew joins.
std::vector<std::unique_ptr<JoinFormula>> HiveJoinFormulas();

/// Hash and sort aggregation formulas.
std::vector<std::unique_ptr<AggFormula>> HiveAggFormulas();

/// The map-only selection/projection formula.
std::vector<std::unique_ptr<ScanFormula>> HiveScanFormulas();

/// How to resolve multiple applicable algorithms (Section 4): assume the
/// worst case, the average, or what the in-house (Teradata) optimizer
/// would pick — its cheapest candidate.
enum class ChoicePolicy {
  kWorstCase,
  kAverage,
  kInHouseComparable,
};

const char* ChoicePolicyName(ChoicePolicy policy);

/// One candidate algorithm's estimate.
struct AlgorithmEstimate {
  std::string algorithm;
  double seconds = 0.0;
};

/// The sub-op approach's final estimate with diagnostics.
struct SubOpEstimate {
  double seconds = 0.0;
  /// The algorithm the policy settled on ("" for kAverage over several).
  std::string chosen_algorithm;
  std::vector<AlgorithmEstimate> candidates;
};

/// Query-time estimator of the sub-op costing approach.
class SubOpCostEstimator {
 public:
  /// Takes the calibrated catalog and the formula sets for the remote
  /// system's engine family.
  SubOpCostEstimator(SubOpCatalog catalog,
                     std::vector<std::unique_ptr<JoinFormula>> join_formulas,
                     std::vector<std::unique_ptr<AggFormula>> agg_formulas,
                     std::vector<std::unique_ptr<ScanFormula>> scan_formulas,
                     ChoicePolicy policy);

  /// Convenience: Hive formula set.
  [[nodiscard]] static Result<SubOpCostEstimator> ForHive(
      SubOpCatalog catalog, ChoicePolicy policy = ChoicePolicy::kWorstCase);

  /// Applies applicability rules, estimates every surviving algorithm, and
  /// resolves with the policy. FailedPrecondition when no algorithm
  /// survives.
  [[nodiscard]] Result<SubOpEstimate> EstimateJoin(const rel::JoinQuery& q) const;
  [[nodiscard]] Result<SubOpEstimate> EstimateAgg(const rel::AggQuery& q) const;
  [[nodiscard]] Result<SubOpEstimate> EstimateScan(const rel::ScanQuery& q) const;
  [[nodiscard]] Result<SubOpEstimate> Estimate(const rel::SqlOperator& op) const;

  /// Estimates one named algorithm regardless of the policy (used by the
  /// per-algorithm accuracy benchmarks, e.g. Fig 13(g)).
  [[nodiscard]] Result<double> EstimateJoinAlgorithm(const rel::JoinQuery& q,
                                                     const std::string& algorithm) const;
  [[nodiscard]] Result<double> EstimateAggAlgorithm(const rel::AggQuery& q,
                                                    const std::string& algorithm) const;

  const SubOpCatalog& catalog() const { return catalog_; }
  ChoicePolicy policy() const { return policy_; }
  void set_policy(ChoicePolicy policy) { policy_ = policy; }

 private:
  [[nodiscard]] Result<SubOpEstimate> Resolve(std::vector<AlgorithmEstimate> candidates) const;

  SubOpCatalog catalog_;
  std::vector<std::unique_ptr<JoinFormula>> join_formulas_;
  std::vector<std::unique_ptr<AggFormula>> agg_formulas_;
  std::vector<std::unique_ptr<ScanFormula>> scan_formulas_;
  ChoicePolicy policy_;
};

}  // namespace intellisphere::core

#endif  // INTELLISPHERE_CORE_FORMULAS_H_
