// Min-max feature/target scaling. The paper's training dimensions span many
// orders of magnitude (record counts up to 8x10^7 against record sizes of
// 40..1000 bytes), so the MLP trains on [0, 1]-normalized inputs.

#ifndef INTELLISPHERE_ML_SCALER_H_
#define INTELLISPHERE_ML_SCALER_H_

#include <vector>

#include "ml/dataset.h"
#include "util/properties.h"
#include "util/status.h"

namespace intellisphere::ml {

/// Per-feature min-max scaler mapping each feature into [0, 1].
///
/// Values outside the fitted range map outside [0, 1] proportionally; the
/// scaler never clamps, because out-of-range behaviour is exactly what the
/// online-remedy experiments probe.
class MinMaxScaler {
 public:
  /// Fits per-feature mins/maxes; constant features get span 1 so they map
  /// to 0 (fitted min) everywhere.
  static Result<MinMaxScaler> Fit(const std::vector<std::vector<double>>& x);

  /// Scales one row; InvalidArgument on width mismatch.
  Result<std::vector<double>> Transform(const std::vector<double>& row) const;

  /// Allocation-free Transform: writes the scaled row into caller-owned
  /// `out` (num_features() doubles). Identical arithmetic to Transform, so
  /// the two are bit-interchangeable; this is the batched-inference path.
  Status TransformTo(const std::vector<double>& row, double* out) const;

  /// Widens the fitted range to cover `row` (used by offline tuning when new
  /// log records extend the trained domain).
  Status Extend(const std::vector<double>& row);

  size_t num_features() const { return mins_.size(); }
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }

  /// Persists under "<prefix>mins" / "<prefix>maxs".
  void Save(const std::string& prefix, Properties* props) const;
  static Result<MinMaxScaler> Load(const std::string& prefix,
                                   const Properties& props);

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

/// Scalar min-max scaler for the regression target.
class TargetScaler {
 public:
  static Result<TargetScaler> Fit(const std::vector<double>& y);

  double Transform(double v) const;
  double Inverse(double scaled) const;
  void Extend(double v);

  void Save(const std::string& prefix, Properties* props) const;
  static Result<TargetScaler> Load(const std::string& prefix,
                                   const Properties& props);

 private:
  double min_ = 0.0;
  double max_ = 1.0;
};

}  // namespace intellisphere::ml

#endif  // INTELLISPHERE_ML_SCALER_H_
