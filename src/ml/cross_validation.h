// The paper's neural-network topology search (Section 3):
//
//   "we vary the number of nodes in the 1st layer between the number of
//    inputs and the double of that number, and vary the number of nodes in
//    the 2nd layer between three and half the number of the 1st layer's
//    nodes. Then, for each topology, we use a cross validation test
//    involving 70% of data as training and 30% as a test ... we select the
//    topology that introduces the least root-mean-square error."

#ifndef INTELLISPHERE_ML_CROSS_VALIDATION_H_
#define INTELLISPHERE_ML_CROSS_VALIDATION_H_

#include <vector>

#include "ml/dataset.h"
#include "ml/mlp.h"
#include "util/status.h"

namespace intellisphere::ml {

/// Options for the topology sweep.
struct TopologySearchOptions {
  /// Gradient steps used per candidate during the search (kept smaller than
  /// the final training budget so the sweep stays cheap).
  int search_iterations = 4000;
  /// Stride when sweeping the first layer from d to 2d.
  int layer1_step = 2;
  double train_fraction = 0.7;
  uint64_t seed = 7;
  /// Worker threads for the sweep. Every (h1, h2) candidate trains on the
  /// same split with the same seed, so the result is identical for any
  /// value; 1 evaluates candidates inline, exactly the serial sweep.
  int jobs = 1;
  /// Template for the non-topology hyperparameters.
  MlpConfig base;
};

/// Outcome of evaluating a single candidate topology.
struct TopologyScore {
  int hidden1 = 0;
  int hidden2 = 0;
  double rmse = 0.0;
};

/// Result of the search: the winning topology plus all evaluated scores.
struct TopologySearchResult {
  MlpConfig best;          ///< base config with winning hidden1/hidden2
  double best_rmse = 0.0;  ///< held-out RMSE of the winner
  std::vector<TopologyScore> scores;
};

/// Runs the paper's sweep and returns the topology with least held-out RMSE.
/// Requires a dataset large enough to split.
Result<TopologySearchResult> SearchTopology(const Dataset& data,
                                            const TopologySearchOptions& opts);

}  // namespace intellisphere::ml

#endif  // INTELLISPHERE_ML_CROSS_VALIDATION_H_
