#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "ml/matrix.h"
#include "util/metrics.h"

namespace intellisphere::ml {

namespace {

double SignedLog1p(double v) {
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

double SignedExpm1(double v) {
  return v >= 0.0 ? std::expm1(v) : -std::expm1(-v);
}

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;

void AdamInit(std::vector<double>* m, std::vector<double>* v, size_t n) {
  m->assign(n, 0.0);
  v->assign(n, 0.0);
}

void AdamStep(std::vector<double>* params, const std::vector<double>& grad,
              std::vector<double>* m, std::vector<double>* v, int64_t t,
              double lr) {
  double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(t));
  double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(t));
  for (size_t i = 0; i < params->size(); ++i) {
    (*m)[i] = kAdamBeta1 * (*m)[i] + (1.0 - kAdamBeta1) * grad[i];
    (*v)[i] = kAdamBeta2 * (*v)[i] + (1.0 - kAdamBeta2) * grad[i] * grad[i];
    double mh = (*m)[i] / bc1;
    double vh = (*v)[i] / bc2;
    (*params)[i] -= lr * mh / (std::sqrt(vh) + kAdamEps);
  }
}

}  // namespace

Result<MlpRegressor> MlpRegressor::Train(const Dataset& data,
                                         const MlpConfig& cfg) {
  ISPHERE_RETURN_NOT_OK(data.Validate());
  if (data.size() < 4) return Status::InvalidArgument("MLP needs >= 4 rows");
  if (data.num_features() == 0) {
    return Status::InvalidArgument("MLP needs >= 1 feature");
  }
  if (cfg.hidden1 < 1 || cfg.hidden2 < 1) {
    return Status::InvalidArgument("hidden layer sizes must be >= 1");
  }
  if (cfg.iterations < 1 || cfg.batch_size < 1 || cfg.eval_every < 1) {
    return Status::InvalidArgument("invalid MLP training config");
  }
  MlpRegressor mlp;
  mlp.config_ = cfg;
  mlp.data_ = data;
  Dataset pre = mlp.PreTransform(data);
  ISPHERE_ASSIGN_OR_RETURN(mlp.input_scaler_, MinMaxScaler::Fit(pre.x));
  ISPHERE_ASSIGN_OR_RETURN(mlp.target_scaler_, TargetScaler::Fit(pre.y));
  Rng rng(cfg.seed);
  mlp.InitWeights(data.num_features(), &rng);
  ISPHERE_RETURN_NOT_OK(mlp.RunTraining(cfg.iterations, &rng));
  return mlp;
}

Status MlpRegressor::ContinueTraining(const Dataset& new_data,
                                      int iterations) {
  if (iterations < 1) return Status::InvalidArgument("iterations must be >= 1");
  ISPHERE_RETURN_NOT_OK(new_data.Validate());
  if (new_data.size() > 0) {
    if (new_data.num_features() != num_features()) {
      return Status::InvalidArgument("offline-tuning feature width mismatch");
    }
    Dataset pre = PreTransform(new_data);
    for (const auto& row : pre.x) {
      ISPHERE_RETURN_NOT_OK(input_scaler_.Extend(row));
    }
    for (double t : pre.y) target_scaler_.Extend(t);
    ISPHERE_RETURN_NOT_OK(data_.Append(new_data));
  }
  // Decorrelate the resumed batch sampling from the original run while
  // keeping it reproducible.
  Rng rng(config_.seed + 0x9e3779b97f4a7c15ULL +
          static_cast<uint64_t>(total_iterations_));
  return RunTraining(iterations, &rng);
}

void MlpRegressor::InitWeights(size_t num_features, Rng* rng) {
  size_t in = num_features;
  size_t h1 = static_cast<size_t>(config_.hidden1);
  size_t h2 = static_cast<size_t>(config_.hidden2);
  auto xavier = [&](size_t fan_in, size_t fan_out, std::vector<double>* w,
                    size_t n) {
    double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    w->resize(n);
    for (double& x : *w) x = rng->Uniform(-limit, limit);
  };
  xavier(in, h1, &w1_, h1 * in);
  b1_.assign(h1, 0.0);
  xavier(h1, h2, &w2_, h2 * h1);
  b2_.assign(h2, 0.0);
  xavier(h2, 1, &w3_, h2);
  b3_.assign(1, 0.0);
  AdamInit(&aw1_.m, &aw1_.v, w1_.size());
  AdamInit(&ab1_.m, &ab1_.v, b1_.size());
  AdamInit(&aw2_.m, &aw2_.v, w2_.size());
  AdamInit(&ab2_.m, &ab2_.v, b2_.size());
  AdamInit(&aw3_.m, &aw3_.v, w3_.size());
  AdamInit(&ab3_.m, &ab3_.v, b3_.size());
  adam_t_ = 0;
}

void MlpRegressor::RebuildInferenceWeights() {
  size_t in = num_features();
  size_t h1 = b1_.size();
  size_t h2 = b2_.size();
  w1t_.resize(h1 * in);
  for (size_t j = 0; j < h1; ++j) {
    for (size_t i = 0; i < in; ++i) w1t_[i * h1 + j] = w1_[j * in + i];
  }
  w2t_.resize(h2 * h1);
  for (size_t j = 0; j < h2; ++j) {
    for (size_t i = 0; i < h1; ++i) w2t_[i * h2 + j] = w2_[j * h1 + i];
  }
}

Status MlpRegressor::PredictBatchTo(const std::vector<double>* rows, size_t n,
                                    std::vector<double>* out) const {
  if (b3_.empty()) {
    return Status::FailedPrecondition("predict on an untrained MLP");
  }
  size_t in = num_features();
  size_t h1 = b1_.size();
  size_t h2 = b2_.size();

  // Scale every row into one flat [n x in] buffer.
  std::vector<double> xs(n * in);
  std::vector<double> pre;  // reused per row for the optional log transform
  for (size_t r = 0; r < n; ++r) {
    const std::vector<double>* src = &rows[r];
    if (config_.log_scale) {
      pre = rows[r];
      for (double& v : pre) v = SignedLog1p(v);
      src = &pre;
    }
    ISPHERE_RETURN_NOT_OK(input_scaler_.TransformTo(*src, xs.data() + r * in));
  }

  // Batched forward pass, mirroring RunTraining: pre-activations start at
  // the bias and each GEMM accumulates in ascending input order, so every
  // value is bit-identical to the per-row matvec this lowers (the k-major
  // GemmAccum keeps that order while vectorizing across outputs).
  std::vector<double> a1(n * h1);
  std::vector<double> a2(n * h2);
  for (size_t b = 0; b < n; ++b) {
    for (size_t j = 0; j < h1; ++j) a1[b * h1 + j] = b1_[j];
  }
  GemmAccum(xs.data(), n, in, w1t_.data(), h1, a1.data());
  for (double& v : a1) v = std::tanh(v);
  for (size_t b = 0; b < n; ++b) {
    for (size_t j = 0; j < h2; ++j) a2[b * h2 + j] = b2_[j];
  }
  GemmAccum(a1.data(), n, h1, w2t_.data(), h2, a2.data());
  for (double& v : a2) v = std::tanh(v);
  out->assign(n, b3_[0]);
  GemmAccum(a2.data(), n, h2, w3_.data(), 1, out->data());

  for (double& v : *out) {
    v = target_scaler_.Inverse(v);
    if (config_.log_scale) v = SignedExpm1(v);
  }
  return Status::OK();
}

Status MlpRegressor::RunTraining(int steps, Rng* rng) {
  size_t n = data_.size();
  if (n == 0) {
    return Status::FailedPrecondition(
        "no retained training data (model was loaded for inference only)");
  }
  size_t in = data_.num_features();
  size_t h1 = b1_.size();
  size_t h2 = b2_.size();
  size_t batch = std::min<size_t>(static_cast<size_t>(config_.batch_size), n);

  // Pre-scale the retained data once per training run (scalers are fixed
  // during a run) into the flat workspace buffer.
  Dataset pre = PreTransform(data_);
  Workspace& ws = ws_;
  ws.xs.resize(n * in);
  ws.ys.resize(n);
  for (size_t r = 0; r < n; ++r) {
    ISPHERE_ASSIGN_OR_RETURN(std::vector<double> row,
                             input_scaler_.Transform(pre.x[r]));
    std::copy(row.begin(), row.end(), ws.xs.begin() + r * in);
    ws.ys[r] = target_scaler_.Transform(pre.y[r]);
  }

  // Everything below reuses workspace storage: after the resizes settle on
  // the first step, the gradient loop performs no allocations.
  ws.batch_rows.resize(batch);
  ws.bx.resize(batch * in);
  ws.ba1.resize(batch * h1);
  ws.ba2.resize(batch * h2);
  ws.bout.resize(batch);
  ws.d1.resize(h1);
  ws.d2.resize(h2);
  ws.gw1.resize(w1_.size());
  ws.gb1.resize(b1_.size());
  ws.gw2.resize(w2_.size());
  ws.gb2.resize(b2_.size());
  ws.gw3.resize(w3_.size());
  ws.gb3.resize(b3_.size());

  for (int step = 0; step < steps; ++step) {
    // Sample the mini-batch (one rng draw per slot, same order as ever) and
    // gather its rows.
    for (size_t b = 0; b < batch; ++b) {
      size_t r = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n) - 1));
      ws.batch_rows[b] = r;
      std::copy(ws.xs.begin() + r * in, ws.xs.begin() + (r + 1) * in,
                ws.bx.begin() + b * in);
    }

    // Batched forward pass: pre-activations start at the bias and the GEMM
    // accumulates in ascending input order, so every value is bit-identical
    // to the per-sample matvec this replaces.
    for (size_t b = 0; b < batch; ++b) {
      for (size_t j = 0; j < h1; ++j) ws.ba1[b * h1 + j] = b1_[j];
    }
    GemmTransB(ws.bx.data(), batch, in, w1_.data(), h1, ws.ba1.data());
    for (double& v : ws.ba1) v = std::tanh(v);
    for (size_t b = 0; b < batch; ++b) {
      for (size_t j = 0; j < h2; ++j) ws.ba2[b * h2 + j] = b2_[j];
    }
    GemmTransB(ws.ba1.data(), batch, h1, w2_.data(), h2, ws.ba2.data());
    for (double& v : ws.ba2) v = std::tanh(v);
    for (size_t b = 0; b < batch; ++b) ws.bout[b] = b3_[0];
    GemmTransB(ws.ba2.data(), batch, h2, w3_.data(), 1, ws.bout.data());

    std::fill(ws.gw1.begin(), ws.gw1.end(), 0.0);
    std::fill(ws.gb1.begin(), ws.gb1.end(), 0.0);
    std::fill(ws.gw2.begin(), ws.gw2.end(), 0.0);
    std::fill(ws.gb2.begin(), ws.gb2.end(), 0.0);
    std::fill(ws.gw3.begin(), ws.gw3.end(), 0.0);
    std::fill(ws.gb3.begin(), ws.gb3.end(), 0.0);

    for (size_t b = 0; b < batch; ++b) {
      const double* x = ws.bx.data() + b * in;
      const double* a1 = ws.ba1.data() + b * h1;
      const double* a2 = ws.ba2.data() + b * h2;
      double err = ws.bout[b] - ws.ys[ws.batch_rows[b]];  // d(0.5e^2)/dpred

      // Output layer.
      for (size_t i = 0; i < h2; ++i) ws.gw3[i] += err * a2[i];
      ws.gb3[0] += err;
      // Hidden layer 2 (tanh').
      for (size_t j = 0; j < h2; ++j) {
        ws.d2[j] = err * w3_[j] * (1.0 - a2[j] * a2[j]);
        ws.gb2[j] += ws.d2[j];
        for (size_t i = 0; i < h1; ++i) {
          ws.gw2[j * h1 + i] += ws.d2[j] * a1[i];
        }
      }
      // Hidden layer 1.
      for (size_t j = 0; j < h1; ++j) {
        double s = 0.0;
        for (size_t k = 0; k < h2; ++k) s += ws.d2[k] * w2_[k * h1 + j];
        ws.d1[j] = s * (1.0 - a1[j] * a1[j]);
        ws.gb1[j] += ws.d1[j];
        for (size_t i = 0; i < in; ++i) {
          ws.gw1[j * in + i] += ws.d1[j] * x[i];
        }
      }
    }
    double inv = 1.0 / static_cast<double>(batch);
    for (double& g : ws.gw1) g *= inv;
    for (double& g : ws.gb1) g *= inv;
    for (double& g : ws.gw2) g *= inv;
    for (double& g : ws.gb2) g *= inv;
    for (double& g : ws.gw3) g *= inv;
    for (double& g : ws.gb3) g *= inv;

    ++adam_t_;
    AdamStep(&w1_, ws.gw1, &aw1_.m, &aw1_.v, adam_t_, config_.learning_rate);
    AdamStep(&b1_, ws.gb1, &ab1_.m, &ab1_.v, adam_t_, config_.learning_rate);
    AdamStep(&w2_, ws.gw2, &aw2_.m, &aw2_.v, adam_t_, config_.learning_rate);
    AdamStep(&b2_, ws.gb2, &ab2_.m, &ab2_.v, adam_t_, config_.learning_rate);
    AdamStep(&w3_, ws.gw3, &aw3_.m, &aw3_.v, adam_t_, config_.learning_rate);
    AdamStep(&b3_, ws.gb3, &ab3_.m, &ab3_.v, adam_t_, config_.learning_rate);

    ++total_iterations_;
    if (total_iterations_ % config_.eval_every == 0 || step == steps - 1) {
      // The history eval goes through Predict, which reads the transposed
      // inference weights — refresh them first (cheap: one pass over w1/w2).
      RebuildInferenceWeights();
      ISPHERE_ASSIGN_OR_RETURN(double rp, TrainingRmsePercent());
      history_.push_back({total_iterations_, rp});
    }
  }
  RebuildInferenceWeights();
  return Status::OK();
}

Result<double> MlpRegressor::TrainingRmsePercent() const {
  std::vector<double> preds;
  preds.reserve(data_.size());
  for (const auto& row : data_.x) {
    ISPHERE_ASSIGN_OR_RETURN(double p, Predict(row));
    preds.push_back(p);
  }
  return RmsePercent(data_.y, preds);
}

Dataset MlpRegressor::PreTransform(const Dataset& data) const {
  if (!config_.log_scale) return data;
  Dataset out;
  out.x.reserve(data.x.size());
  out.y.reserve(data.y.size());
  for (size_t r = 0; r < data.size(); ++r) {
    std::vector<double> row(data.x[r].size());
    for (size_t i = 0; i < row.size(); ++i) row[i] = SignedLog1p(data.x[r][i]);
    out.x.push_back(std::move(row));
    out.y.push_back(SignedLog1p(data.y[r]));
  }
  return out;
}

Result<double> MlpRegressor::Predict(const std::vector<double>& row) const {
  std::vector<double> out;
  ISPHERE_RETURN_NOT_OK(PredictBatchTo(&row, 1, &out));
  return out[0];
}

Status MlpRegressor::PredictBatch(const std::vector<std::vector<double>>& rows,
                                  std::vector<double>* out) const {
  return PredictBatchTo(rows.data(), rows.size(), out);
}

void MlpRegressor::Save(const std::string& prefix, Properties* props) const {
  props->SetInt(prefix + "hidden1", config_.hidden1);
  props->SetInt(prefix + "hidden2", config_.hidden2);
  props->SetInt(prefix + "iterations", config_.iterations);
  props->SetInt(prefix + "batch_size", config_.batch_size);
  props->SetDouble(prefix + "learning_rate", config_.learning_rate);
  props->SetInt(prefix + "eval_every", config_.eval_every);
  props->SetInt(prefix + "seed", static_cast<int64_t>(config_.seed));
  props->SetBool(prefix + "log_scale", config_.log_scale);
  input_scaler_.Save(prefix + "in_", props);
  target_scaler_.Save(prefix + "out_", props);
  props->SetDoubleList(prefix + "w1", w1_);
  props->SetDoubleList(prefix + "b1", b1_);
  props->SetDoubleList(prefix + "w2", w2_);
  props->SetDoubleList(prefix + "b2", b2_);
  props->SetDoubleList(prefix + "w3", w3_);
  props->SetDoubleList(prefix + "b3", b3_);
}

Result<MlpRegressor> MlpRegressor::Load(const std::string& prefix,
                                        const Properties& props) {
  MlpRegressor mlp;
  ISPHERE_ASSIGN_OR_RETURN(int64_t h1, props.GetInt(prefix + "hidden1"));
  ISPHERE_ASSIGN_OR_RETURN(int64_t h2, props.GetInt(prefix + "hidden2"));
  ISPHERE_ASSIGN_OR_RETURN(int64_t iters, props.GetInt(prefix + "iterations"));
  ISPHERE_ASSIGN_OR_RETURN(int64_t bs, props.GetInt(prefix + "batch_size"));
  ISPHERE_ASSIGN_OR_RETURN(double lr, props.GetDouble(prefix + "learning_rate"));
  ISPHERE_ASSIGN_OR_RETURN(int64_t ee, props.GetInt(prefix + "eval_every"));
  ISPHERE_ASSIGN_OR_RETURN(int64_t seed, props.GetInt(prefix + "seed"));
  mlp.config_.hidden1 = static_cast<int>(h1);
  mlp.config_.hidden2 = static_cast<int>(h2);
  mlp.config_.iterations = static_cast<int>(iters);
  mlp.config_.batch_size = static_cast<int>(bs);
  mlp.config_.learning_rate = lr;
  mlp.config_.eval_every = static_cast<int>(ee);
  mlp.config_.seed = static_cast<uint64_t>(seed);
  if (props.Contains(prefix + "log_scale")) {
    ISPHERE_ASSIGN_OR_RETURN(mlp.config_.log_scale,
                             props.GetBool(prefix + "log_scale"));
  }
  ISPHERE_ASSIGN_OR_RETURN(mlp.input_scaler_,
                           MinMaxScaler::Load(prefix + "in_", props));
  ISPHERE_ASSIGN_OR_RETURN(mlp.target_scaler_,
                           TargetScaler::Load(prefix + "out_", props));
  ISPHERE_ASSIGN_OR_RETURN(mlp.w1_, props.GetDoubleList(prefix + "w1"));
  ISPHERE_ASSIGN_OR_RETURN(mlp.b1_, props.GetDoubleList(prefix + "b1"));
  ISPHERE_ASSIGN_OR_RETURN(mlp.w2_, props.GetDoubleList(prefix + "w2"));
  ISPHERE_ASSIGN_OR_RETURN(mlp.b2_, props.GetDoubleList(prefix + "b2"));
  ISPHERE_ASSIGN_OR_RETURN(mlp.w3_, props.GetDoubleList(prefix + "w3"));
  ISPHERE_ASSIGN_OR_RETURN(mlp.b3_, props.GetDoubleList(prefix + "b3"));
  size_t in = mlp.input_scaler_.num_features();
  if (mlp.w1_.size() != static_cast<size_t>(h1) * in ||
      mlp.b1_.size() != static_cast<size_t>(h1) ||
      mlp.w2_.size() != static_cast<size_t>(h2 * h1) ||
      mlp.b2_.size() != static_cast<size_t>(h2) ||
      mlp.w3_.size() != static_cast<size_t>(h2) || mlp.b3_.size() != 1) {
    return Status::InvalidArgument("inconsistent serialized MLP shapes");
  }
  AdamInit(&mlp.aw1_.m, &mlp.aw1_.v, mlp.w1_.size());
  AdamInit(&mlp.ab1_.m, &mlp.ab1_.v, mlp.b1_.size());
  AdamInit(&mlp.aw2_.m, &mlp.aw2_.v, mlp.w2_.size());
  AdamInit(&mlp.ab2_.m, &mlp.ab2_.v, mlp.b2_.size());
  AdamInit(&mlp.aw3_.m, &mlp.aw3_.v, mlp.w3_.size());
  AdamInit(&mlp.ab3_.m, &mlp.ab3_.v, mlp.b3_.size());
  mlp.RebuildInferenceWeights();
  return mlp;
}

}  // namespace intellisphere::ml
