// A small two-hidden-layer multilayer perceptron for cost regression,
// written from scratch (no external DL framework).
//
// This is the "deep learning model" of the paper's logical-operator costing
// (Section 3, Figure 2): 7 inputs for join, 4 for aggregation, two hidden
// layers whose widths are chosen by cross validation, one linear output
// (elapsed time). Hidden units use tanh, which reproduces the paper's key
// observation that the network interpolates well but saturates instead of
// extrapolating for out-of-range inputs (Figure 14).

#ifndef INTELLISPHERE_ML_MLP_H_
#define INTELLISPHERE_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "ml/scaler.h"
#include "util/properties.h"
#include "util/status.h"

namespace intellisphere::ml {

/// Training hyperparameters for MlpRegressor.
struct MlpConfig {
  int hidden1 = 10;          ///< neurons in the first hidden layer
  int hidden2 = 5;           ///< neurons in the second hidden layer
  int iterations = 20000;    ///< mini-batch gradient steps (paper: 20k)
  int batch_size = 64;       ///< mini-batch size
  double learning_rate = 2e-3;  ///< Adam step size
  int eval_every = 250;      ///< convergence-history sampling interval
  uint64_t seed = 42;        ///< weight init + batch sampling seed
  /// Apply a signed log1p transform to inputs and target before min-max
  /// scaling. Off by default: raw min-max scaling reproduces the paper's
  /// networks, including their sharp tanh saturation on out-of-range
  /// inputs (the phenomenon Figure 14 studies). Log scaling conditions
  /// wide-range features better in range but extrapolates more gracefully,
  /// which would understate the remedy phase's benefit.
  bool log_scale = false;
};

/// One point on the paper's convergence plots (Figures 11(b), 12(b)):
/// RMSE% over the training set after `iteration` steps.
struct ConvergencePoint {
  int iteration = 0;
  double rmse_percent = 0.0;
};

/// Two-hidden-layer tanh MLP regressor with Adam optimization and built-in
/// min-max input/target scaling.
class MlpRegressor {
 public:
  /// Creates an empty (untrained) regressor; Predict on it is invalid.
  /// Obtain usable instances via Train or Load.
  MlpRegressor() = default;

  /// Trains a fresh network. Requires >= 4 rows and >= 1 feature.
  static Result<MlpRegressor> Train(const Dataset& data, const MlpConfig& cfg);

  /// Offline-tuning entry point (Section 3): appends newly logged
  /// executions to the retained training data, widens the scalers to cover
  /// them, and resumes training for `iterations` further steps.
  Status ContinueTraining(const Dataset& new_data, int iterations);

  /// Predicts the (unscaled) target for one raw feature row. Implemented as
  /// the N=1 case of PredictBatch, so the two are bit-identical by
  /// construction.
  Result<double> Predict(const std::vector<double>& row) const;

  /// Predicts the (unscaled) targets for N raw feature rows in one batched
  /// forward pass: one GEMM per layer over k-major transposed weight
  /// copies, exactly how the trainer batches its forward pass. out[i] is
  /// bit-identical to Predict(rows[i]) — accumulation order per output is
  /// unchanged (DESIGN.md §14). Thread-safe on a const regressor: scratch
  /// is local to the call (one allocation amortized over the batch).
  Status PredictBatch(const std::vector<std::vector<double>>& rows,
                      std::vector<double>* out) const;

  /// RMSE%-vs-iteration samples accumulated across Train and
  /// ContinueTraining calls.
  const std::vector<ConvergencePoint>& history() const { return history_; }

  const MlpConfig& config() const { return config_; }
  size_t num_features() const { return input_scaler_.num_features(); }
  /// Rows currently retained for (re)training.
  size_t training_rows() const { return data_.size(); }

  /// Serializes weights, scalers, and config under `prefix`.
  void Save(const std::string& prefix, Properties* props) const;
  static Result<MlpRegressor> Load(const std::string& prefix,
                                   const Properties& props);

 private:
  /// Allocates and Xavier-initializes weights for the configured topology.
  void InitWeights(size_t num_features, Rng* rng);
  /// Runs `steps` Adam steps over the retained data.
  Status RunTraining(int steps, Rng* rng);
  /// Shared batched forward: scales `rows[0..n)` and runs one GEMM per
  /// layer. Predict and PredictBatch both land here.
  Status PredictBatchTo(const std::vector<double>* rows, size_t n,
                        std::vector<double>* out) const;
  /// Refreshes the k-major transposed weight copies (w1t_, w2t_) the
  /// inference GEMMs read. Must run after any weight mutation before the
  /// next Predict/PredictBatch (end of RunTraining, Load, history evals).
  void RebuildInferenceWeights();
  /// RMSE% over the retained training data (unscaled targets).
  Result<double> TrainingRmsePercent() const;
  /// Applies the optional signed-log1p pre-transform to a dataset copy.
  Dataset PreTransform(const Dataset& data) const;

  MlpConfig config_;
  MinMaxScaler input_scaler_;
  TargetScaler target_scaler_;
  Dataset data_;  ///< retained raw training data for offline tuning

  // Layer weights, row-major: w1_[j*in+i] connects input i to hidden-1 j.
  std::vector<double> w1_, b1_;
  std::vector<double> w2_, b2_;
  std::vector<double> w3_, b3_;  // w3_ has hidden2 entries (single output)

  // k-major (input-major) transposed copies of w1_/w2_ for the inference
  // GEMM (GemmAccum): w1t_[i*h1+j] == w1_[j*in+i]. Derived state — never
  // serialized; rebuilt by RebuildInferenceWeights. w3_ is already k-major
  // for a single output, so it needs no copy.
  std::vector<double> w1t_, w2t_;

  // Adam state (first and second moments per parameter group).
  struct AdamState {
    std::vector<double> m, v;
  };
  AdamState aw1_, ab1_, aw2_, ab2_, aw3_, ab3_;
  int64_t adam_t_ = 0;

  // Scratch buffers for RunTraining, reused across steps and across
  // Train/ContinueTraining calls so the gradient loop allocates nothing.
  // A regressor is trained by exactly one thread (parallel pipelines give
  // every task its own MlpRegressor), so this doubles as the per-thread
  // workspace. Never serialized; rebuilt lazily by the next training run.
  struct Workspace {
    std::vector<double> xs;          // n x in scaled inputs, row-major
    std::vector<double> ys;          // n scaled targets
    std::vector<size_t> batch_rows;  // sampled row index per batch slot
    std::vector<double> bx;          // batch x in gathered inputs
    std::vector<double> ba1, ba2;    // batch x h1 / h2 activations
    std::vector<double> bout;        // batch outputs
    std::vector<double> d1, d2;      // per-sample deltas
    std::vector<double> gw1, gb1, gw2, gb2, gw3, gb3;  // gradients
  };
  Workspace ws_;

  std::vector<ConvergencePoint> history_;
  int total_iterations_ = 0;
};

}  // namespace intellisphere::ml

#endif  // INTELLISPHERE_ML_MLP_H_
