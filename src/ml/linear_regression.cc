#include "ml/linear_regression.h"

#include "ml/matrix.h"

namespace intellisphere::ml {

Result<LinearRegression> LinearRegression::Fit(const Dataset& data,
                                               double ridge) {
  ISPHERE_RETURN_NOT_OK(data.Validate());
  size_t d = data.num_features();
  if (d == 0) return Status::InvalidArgument("no features");
  if (data.size() < d + 1) {
    return Status::InvalidArgument("need at least num_features+1 samples");
  }
  // Normal equations over the design matrix [x | 1].
  size_t n = d + 1;
  Matrix ata(n, n);
  std::vector<double> atb(n, 0.0);
  for (size_t r = 0; r < data.size(); ++r) {
    std::vector<double> row = data.x[r];
    row.push_back(1.0);
    for (size_t i = 0; i < n; ++i) {
      atb[i] += row[i] * data.y[r];
      for (size_t j = 0; j < n; ++j) ata.At(i, j) += row[i] * row[j];
    }
  }
  for (size_t i = 0; i < d; ++i) ata.At(i, i) += ridge;
  ISPHERE_ASSIGN_OR_RETURN(std::vector<double> coef, ata.Solve(atb));
  LinearRegression lr;
  lr.weights_.assign(coef.begin(), coef.begin() + static_cast<long>(d));
  lr.intercept_ = coef[d];
  return lr;
}

Result<LinearRegression> LinearRegression::Fit1D(
    const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("Fit1D size mismatch");
  }
  Dataset data;
  for (size_t i = 0; i < x.size(); ++i) data.Add({x[i]}, y[i]);
  return Fit(data);
}

Result<double> LinearRegression::Predict(const std::vector<double>& row) const {
  if (row.size() != weights_.size()) {
    return Status::InvalidArgument("predict width mismatch");
  }
  double s = intercept_;
  for (size_t i = 0; i < row.size(); ++i) s += weights_[i] * row[i];
  return s;
}

Result<double> LinearRegression::Predict1D(double x) const {
  return Predict({x});
}

void LinearRegression::Save(const std::string& prefix,
                            Properties* props) const {
  props->SetDoubleList(prefix + "weights", weights_);
  props->SetDouble(prefix + "intercept", intercept_);
}

Result<LinearRegression> LinearRegression::Load(const std::string& prefix,
                                                const Properties& props) {
  LinearRegression lr;
  ISPHERE_ASSIGN_OR_RETURN(lr.weights_,
                           props.GetDoubleList(prefix + "weights"));
  ISPHERE_ASSIGN_OR_RETURN(lr.intercept_,
                           props.GetDouble(prefix + "intercept"));
  return lr;
}

}  // namespace intellisphere::ml
