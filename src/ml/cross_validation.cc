#include "ml/cross_validation.h"

#include <algorithm>

#include "util/metrics.h"

namespace intellisphere::ml {

Result<TopologySearchResult> SearchTopology(
    const Dataset& data, const TopologySearchOptions& opts) {
  ISPHERE_RETURN_NOT_OK(data.Validate());
  int d = static_cast<int>(data.num_features());
  if (d == 0) return Status::InvalidArgument("no features");
  if (opts.layer1_step < 1) {
    return Status::InvalidArgument("layer1_step must be >= 1");
  }

  Rng rng(opts.seed);
  ISPHERE_ASSIGN_OR_RETURN(TrainTestSplit split,
                           Split(data, opts.train_fraction, &rng));

  TopologySearchResult result;
  bool first = true;
  for (int h1 = d; h1 <= 2 * d; h1 += opts.layer1_step) {
    int h2_max = std::max(3, h1 / 2);
    for (int h2 = 3; h2 <= h2_max; ++h2) {
      MlpConfig cfg = opts.base;
      cfg.hidden1 = h1;
      cfg.hidden2 = h2;
      cfg.iterations = opts.search_iterations;
      ISPHERE_ASSIGN_OR_RETURN(MlpRegressor mlp,
                               MlpRegressor::Train(split.train, cfg));
      std::vector<double> preds;
      preds.reserve(split.test.size());
      for (const auto& row : split.test.x) {
        ISPHERE_ASSIGN_OR_RETURN(double p, mlp.Predict(row));
        preds.push_back(p);
      }
      ISPHERE_ASSIGN_OR_RETURN(double rmse, Rmse(split.test.y, preds));
      result.scores.push_back({h1, h2, rmse});
      if (first || rmse < result.best_rmse) {
        first = false;
        result.best_rmse = rmse;
        result.best = opts.base;
        result.best.hidden1 = h1;
        result.best.hidden2 = h2;
      }
    }
  }
  return result;
}

}  // namespace intellisphere::ml
