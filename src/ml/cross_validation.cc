#include "ml/cross_validation.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace intellisphere::ml {

Result<TopologySearchResult> SearchTopology(
    const Dataset& data, const TopologySearchOptions& opts) {
  ISPHERE_RETURN_NOT_OK(data.Validate());
  int d = static_cast<int>(data.num_features());
  if (d == 0) return Status::InvalidArgument("no features");
  if (opts.layer1_step < 1) {
    return Status::InvalidArgument("layer1_step must be >= 1");
  }
  if (opts.jobs < 1) return Status::InvalidArgument("jobs must be >= 1");

  Rng rng(opts.seed);
  ISPHERE_ASSIGN_OR_RETURN(TrainTestSplit split,
                           Split(data, opts.train_fraction, &rng));

  // Enumerate every (h1, h2) candidate up front; each one trains
  // independently on the shared split, so they can run on any thread.
  std::vector<std::pair<int, int>> candidates;
  for (int h1 = d; h1 <= 2 * d; h1 += opts.layer1_step) {
    int h2_max = std::max(3, h1 / 2);
    for (int h2 = 3; h2 <= h2_max; ++h2) candidates.emplace_back(h1, h2);
  }

  auto evaluate = [&](size_t idx) -> Result<TopologyScore> {
    auto [h1, h2] = candidates[idx];
    MlpConfig cfg = opts.base;
    cfg.hidden1 = h1;
    cfg.hidden2 = h2;
    cfg.iterations = opts.search_iterations;
    ISPHERE_ASSIGN_OR_RETURN(MlpRegressor mlp,
                             MlpRegressor::Train(split.train, cfg));
    std::vector<double> preds;
    preds.reserve(split.test.size());
    for (const auto& row : split.test.x) {
      ISPHERE_ASSIGN_OR_RETURN(double p, mlp.Predict(row));
      preds.push_back(p);
    }
    ISPHERE_ASSIGN_OR_RETURN(double rmse, Rmse(split.test.y, preds));
    return TopologyScore{h1, h2, rmse};
  };

  std::unique_ptr<ThreadPool> pool;
  if (opts.jobs > 1) pool = std::make_unique<ThreadPool>(opts.jobs);
  std::vector<Result<TopologyScore>> scored =
      RunIndexed(pool.get(), candidates.size(), evaluate);

  // Fold in candidate (submission) order so the winner on ties is the same
  // topology the serial sweep picks.
  TopologySearchResult result;
  bool first = true;
  for (Result<TopologyScore>& r : scored) {
    ISPHERE_ASSIGN_OR_RETURN(TopologyScore score, std::move(r));
    result.scores.push_back(score);
    if (first || score.rmse < result.best_rmse) {
      first = false;
      result.best_rmse = score.rmse;
      result.best = opts.base;
      result.best.hidden1 = score.hidden1;
      result.best.hidden2 = score.hidden2;
    }
  }
  return result;
}

}  // namespace intellisphere::ml
