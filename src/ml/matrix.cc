#include "ml/matrix.h"

#include <cmath>

namespace intellisphere::ml {

Result<Matrix> Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Status::InvalidArgument("no rows");
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      return Status::InvalidArgument("ragged rows in Matrix::FromRows");
    }
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Result<Matrix> Matrix::Multiply(const Matrix& other) const {
  Matrix out;
  ISPHERE_RETURN_NOT_OK(MultiplyInto(other, &out));
  return out;
}

Status Matrix::MultiplyInto(const Matrix& other, Matrix* out) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("matrix multiply dimension mismatch");
  }
  out->rows_ = rows_;
  out->cols_ = other.cols_;
  out->data_.assign(rows_ * other.cols_, 0.0);
  // k-c loop order: the `other` row and the output row stream contiguously.
  // No zero-skip branch — the models train on dense data, so the branch
  // only costs mispredictions in the hot loop.
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(r, k);
      for (size_t c = 0; c < other.cols_; ++c) {
        out->At(r, c) += a * other.At(k, c);
      }
    }
  }
  return Status::OK();
}

void GemmTransB(const double* a, size_t m, size_t k, const double* b,
                size_t n, double* c) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    for (size_t j = 0; j < n; ++j) {
      const double* brow = b + j * k;
      // Accumulation starts from the initialized c value so the result is
      // bit-identical to `s = bias; s += a*b ...` serial code.
      double s = c[i * n + j];
      for (size_t t = 0; t < k; ++t) s += arow[t] * brow[t];
      c[i * n + j] = s;
    }
  }
}

void GemmAccum(const double* a, size_t m, size_t k, const double* b, size_t n,
               double* c) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t t = 0; t < k; ++t) {
      // Hoisting a[i][t] makes the j loop a pure axpy over contiguous rows.
      // Each c[i][j] still receives its t terms in ascending order, so the
      // sums are bit-identical to the dot-product order of GemmTransB.
      double av = arow[t];
      const double* brow = b + t * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

Result<std::vector<double>> Matrix::Solve(const std::vector<double>& b) const {
  if (rows_ != cols_) return Status::InvalidArgument("Solve needs square A");
  if (b.size() != rows_) return Status::InvalidArgument("Solve b size mismatch");
  size_t n = rows_;
  // Augmented working copy.
  Matrix a = *this;
  std::vector<double> x = b;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return Status::InvalidArgument("singular matrix");
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(pivot, c), a.At(col, c));
      std::swap(x[pivot], x[col]);
    }
    // Eliminate below.
    for (size_t r = col + 1; r < n; ++r) {
      double f = a.At(r, col) / a.At(col, col);
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a.At(r, c) -= f * a.At(col, c);
      x[r] -= f * x[col];
    }
  }
  // Back substitution.
  for (size_t ri = n; ri-- > 0;) {
    double s = x[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= a.At(ri, c) * x[c];
    x[ri] = s / a.At(ri, ri);
  }
  return x;
}

}  // namespace intellisphere::ml
