#include "ml/dataset.h"

namespace intellisphere::ml {

Status Dataset::Append(const Dataset& other) {
  ISPHERE_RETURN_NOT_OK(other.Validate());
  if (!x.empty() && !other.x.empty() &&
      other.num_features() != num_features()) {
    return Status::InvalidArgument("appending dataset with different width");
  }
  x.insert(x.end(), other.x.begin(), other.x.end());
  y.insert(y.end(), other.y.begin(), other.y.end());
  return Status::OK();
}

Status Dataset::Validate() const {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("dataset feature/target count mismatch");
  }
  for (const auto& row : x) {
    if (row.size() != x[0].size()) {
      return Status::InvalidArgument("ragged dataset features");
    }
  }
  return Status::OK();
}

Result<TrainTestSplit> Split(const Dataset& data, double train_fraction,
                             Rng* rng) {
  ISPHERE_RETURN_NOT_OK(data.Validate());
  if (data.size() < 2) return Status::InvalidArgument("dataset too small");
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  auto perm = rng->Permutation(data.size());
  size_t n_train = static_cast<size_t>(train_fraction *
                                       static_cast<double>(data.size()));
  if (n_train == 0) n_train = 1;
  if (n_train == data.size()) n_train = data.size() - 1;
  TrainTestSplit split;
  for (size_t i = 0; i < perm.size(); ++i) {
    Dataset& dst = i < n_train ? split.train : split.test;
    dst.Add(data.x[perm[i]], data.y[perm[i]]);
  }
  return split;
}

}  // namespace intellisphere::ml
