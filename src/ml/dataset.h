// Supervised regression dataset plus train/test splitting.

#ifndef INTELLISPHERE_ML_DATASET_H_
#define INTELLISPHERE_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace intellisphere::ml {

/// Feature matrix + target vector; rows(X) == size(y).
struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  size_t size() const { return y.size(); }
  size_t num_features() const { return x.empty() ? 0 : x[0].size(); }

  void Add(std::vector<double> features, double target) {
    x.push_back(std::move(features));
    y.push_back(target);
  }

  /// Appends all rows of `other`; InvalidArgument on feature-width mismatch.
  Status Append(const Dataset& other);

  /// Verifies rectangular features and matching sizes.
  Status Validate() const;
};

/// A shuffled train/test split (the paper uses 70% / 30%).
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Splits with `train_fraction` of rows in train, shuffled by `rng`.
/// InvalidArgument when the dataset is invalid, empty, or the fraction is
/// outside (0, 1).
Result<TrainTestSplit> Split(const Dataset& data, double train_fraction,
                             Rng* rng);

}  // namespace intellisphere::ml

#endif  // INTELLISPHERE_ML_DATASET_H_
