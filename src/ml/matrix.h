// Minimal dense matrix used by the learned cost models. The models in the
// paper are tiny (<= 14 neurons per layer, <= 8 features), so a simple
// row-major double matrix with a pivoting Gaussian solver is all we need.

#ifndef INTELLISPHERE_ML_MATRIX_H_
#define INTELLISPHERE_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace intellisphere::ml {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer-style rows; all rows must have
  /// equal length.
  static Result<Matrix> FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row-major storage (rows() * cols() doubles).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Matrix product; InvalidArgument on inner-dimension mismatch.
  /// Allocates the result; hot paths should use MultiplyInto.
  Result<Matrix> Multiply(const Matrix& other) const;

  /// Writes this * other into the caller-owned `out` (reshaped as needed;
  /// its storage is reused when the capacity already fits, so a buffer kept
  /// across training steps never reallocates). `out` must not alias `this`
  /// or `other`. InvalidArgument on inner-dimension mismatch.
  Status MultiplyInto(const Matrix& other, Matrix* out) const;

  Matrix Transposed() const;

  /// Solves A x = b via Gaussian elimination with partial pivoting.
  /// A must be square with rows()==b.size(); InvalidArgument when singular.
  Result<std::vector<double>> Solve(const std::vector<double>& b) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Accumulating GEMM against a transposed B: c[m x n] += a[m x k] *
/// b[n x k]^T, all row-major and caller-owned (initialize `c` with zeros —
/// or with biases, which is exactly the MLP's pre-activation). The inner
/// loop is the dot product over k, so both the `a` row and the `b` row are
/// walked contiguously, and accumulation order per output element is the
/// plain ascending-k order a serial matvec would use (bit-for-bit stable).
void GemmTransB(const double* a, size_t m, size_t k, const double* b,
                size_t n, double* c);

/// Accumulating GEMM against an untransposed (k-major) B: c[m x n] +=
/// a[m x k] * b[k x n], all row-major and caller-owned (initialize `c` with
/// biases, as with GemmTransB). The loops are ordered i-t-j, so the inner
/// loop streams one `b` row and one `c` row contiguously and vectorizes
/// across the n independent output accumulators — yet each output element
/// still accumulates its k terms in plain ascending-k order, so every
/// result stays bit-identical to GemmTransB and to a serial matvec. This is
/// the inference-path kernel: the MLP keeps k-major transposed copies of
/// its weights so batched prediction can use it (DESIGN.md §14).
void GemmAccum(const double* a, size_t m, size_t k, const double* b, size_t n,
               double* c);

}  // namespace intellisphere::ml

#endif  // INTELLISPHERE_ML_MATRIX_H_
