#include "ml/scaler.h"

#include <algorithm>

namespace intellisphere::ml {

Result<MinMaxScaler> MinMaxScaler::Fit(
    const std::vector<std::vector<double>>& x) {
  if (x.empty()) return Status::InvalidArgument("scaler fit on empty data");
  MinMaxScaler s;
  s.mins_ = x[0];
  s.maxs_ = x[0];
  for (const auto& row : x) {
    if (row.size() != s.mins_.size()) {
      return Status::InvalidArgument("ragged features in scaler fit");
    }
    for (size_t i = 0; i < row.size(); ++i) {
      s.mins_[i] = std::min(s.mins_[i], row[i]);
      s.maxs_[i] = std::max(s.maxs_[i], row[i]);
    }
  }
  return s;
}

Result<std::vector<double>> MinMaxScaler::Transform(
    const std::vector<double>& row) const {
  std::vector<double> out(row.size());
  ISPHERE_RETURN_NOT_OK(TransformTo(row, out.data()));
  return out;
}

Status MinMaxScaler::TransformTo(const std::vector<double>& row,
                                 double* out) const {
  if (row.size() != mins_.size()) {
    return Status::InvalidArgument("scaler transform width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    double span = maxs_[i] - mins_[i];
    if (span <= 0.0) span = 1.0;
    out[i] = (row[i] - mins_[i]) / span;
  }
  return Status::OK();
}

Status MinMaxScaler::Extend(const std::vector<double>& row) {
  if (row.size() != mins_.size()) {
    return Status::InvalidArgument("scaler extend width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    mins_[i] = std::min(mins_[i], row[i]);
    maxs_[i] = std::max(maxs_[i], row[i]);
  }
  return Status::OK();
}

void MinMaxScaler::Save(const std::string& prefix, Properties* props) const {
  props->SetDoubleList(prefix + "mins", mins_);
  props->SetDoubleList(prefix + "maxs", maxs_);
}

Result<MinMaxScaler> MinMaxScaler::Load(const std::string& prefix,
                                        const Properties& props) {
  MinMaxScaler s;
  ISPHERE_ASSIGN_OR_RETURN(s.mins_, props.GetDoubleList(prefix + "mins"));
  ISPHERE_ASSIGN_OR_RETURN(s.maxs_, props.GetDoubleList(prefix + "maxs"));
  if (s.mins_.size() != s.maxs_.size()) {
    return Status::InvalidArgument("scaler mins/maxs size mismatch");
  }
  return s;
}

Result<TargetScaler> TargetScaler::Fit(const std::vector<double>& y) {
  if (y.empty()) return Status::InvalidArgument("target scaler on empty data");
  TargetScaler s;
  s.min_ = *std::min_element(y.begin(), y.end());
  s.max_ = *std::max_element(y.begin(), y.end());
  return s;
}

double TargetScaler::Transform(double v) const {
  double span = max_ - min_;
  if (span <= 0.0) span = 1.0;
  return (v - min_) / span;
}

double TargetScaler::Inverse(double scaled) const {
  double span = max_ - min_;
  if (span <= 0.0) span = 1.0;
  return scaled * span + min_;
}

void TargetScaler::Extend(double v) {
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void TargetScaler::Save(const std::string& prefix, Properties* props) const {
  props->SetDouble(prefix + "target_min", min_);
  props->SetDouble(prefix + "target_max", max_);
}

Result<TargetScaler> TargetScaler::Load(const std::string& prefix,
                                        const Properties& props) {
  TargetScaler s;
  ISPHERE_ASSIGN_OR_RETURN(s.min_, props.GetDouble(prefix + "target_min"));
  ISPHERE_ASSIGN_OR_RETURN(s.max_, props.GetDouble(prefix + "target_max"));
  return s;
}

}  // namespace intellisphere::ml
