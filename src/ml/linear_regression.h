// Ordinary least squares (optionally ridge-stabilized) linear regression.
//
// This is the workhorse of the sub-operator costing approach (Section 4):
// every sub-op gets a tight linear model in record size, and the online
// remedy phase fits small pivot-dimension regressions on the fly (Figure 4).
// It also serves as the baseline the paper compares the neural network
// against in Figures 11(d) and 12(d).

#ifndef INTELLISPHERE_ML_LINEAR_REGRESSION_H_
#define INTELLISPHERE_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "ml/dataset.h"
#include "util/properties.h"
#include "util/status.h"

namespace intellisphere::ml {

/// y = w . x + b fitted by least squares.
class LinearRegression {
 public:
  /// Fits on the dataset; `ridge` adds L2 regularization on the weights
  /// (not the intercept) for numeric stability with collinear features.
  /// Requires at least num_features + 1 rows.
  static Result<LinearRegression> Fit(const Dataset& data, double ridge = 0.0);

  /// Convenience for 1-D data (the sub-op models).
  static Result<LinearRegression> Fit1D(const std::vector<double>& x,
                                        const std::vector<double>& y);

  /// Predicts one row; InvalidArgument on width mismatch.
  Result<double> Predict(const std::vector<double>& row) const;

  /// Predicts for 1-D models.
  Result<double> Predict1D(double x) const;

  size_t num_features() const { return weights_.size(); }
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

  /// Persists under "<prefix>weights" / "<prefix>intercept".
  void Save(const std::string& prefix, Properties* props) const;
  static Result<LinearRegression> Load(const std::string& prefix,
                                       const Properties& props);

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

}  // namespace intellisphere::ml

#endif  // INTELLISPHERE_ML_LINEAR_REGRESSION_H_
