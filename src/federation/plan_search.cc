#include "federation/plan_search.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <set>
#include <utility>

namespace intellisphere::fed {

namespace {

/// A host that cannot run the operator (Unsupported engine / no applicable
/// algorithm) is simply not a candidate; any other error aborts planning.
bool IsEliminationCode(StatusCode code) {
  return code == StatusCode::kUnsupported ||
         code == StatusCode::kFailedPrecondition;
}

/// The search always collects full provenance — the plan it returns is the
/// EXPLAIN source of truth — whatever detail the caller's context asks for.
core::EstimateContext ProvenanceContext(const core::EstimateContext& ctx) {
  core::EstimateContext out = ctx;
  out.detail = core::EstimateDetail::kProvenance;
  return out;
}

/// The approach string a node reports: the master engine's analytic model
/// is "local"; remote hosts report their profile's approach.
std::string ApproachLabel(const std::string& host, const std::string& master,
                          const core::HybridEstimate& est) {
  return host == master ? "local"
                        : core::CostingApproachName(est.approach_used);
}

/// Copies an estimate's costing provenance into a plan node.
void FillNodeProvenance(const std::string& host, const std::string& master,
                        const core::HybridEstimate& est, QueryPlanNode* node) {
  node->operator_seconds = est.seconds;
  node->approach = ApproachLabel(host, master, est);
  node->algorithm = est.algorithm;
  node->algorithm_candidates = est.candidates;
  node->eliminated_algorithms = est.eliminated;
  node->used_remedy = est.used_remedy;
  node->remedy_alpha = est.remedy_alpha;
  node->fell_back_reason = est.fell_back_reason;
}

/// Per-relation derived inputs: post-filter cardinality, the width that
/// travels over QueryGrid, and the width the relation contributes to join
/// projections.
struct RelationInfo {
  std::string table;
  std::string location;
  int64_t base_rows = 0;
  int64_t base_width = 0;
  int64_t rows = 0;   ///< post-filter
  int64_t width = 0;  ///< row bytes entering transfers and joins
  int64_t proj = 0;   ///< projected contribution to join outputs
  bool scanned = false;
  TableProfile profile;
};

/// Split-independent statistics of a relation subset; the DP relies on a
/// subset's cardinality not depending on the join tree that produced it.
struct MaskStats {
  int64_t rows = 0;
  int64_t width = 0;  ///< materialized row bytes (= projection sum for joins)
  int64_t proj = 0;   ///< projected contribution to an enclosing join
};

/// Best known way to materialize a subset's result on one site.
struct DpEntry {
  double cost = 0.0;
  int node = -1;
};

class Searcher {
 public:
  Searcher(const PlanSearchInput& input, const PlannerOptions& options,
           const core::EstimateContext& ctx)
      : input_(input),
        options_(options),
        ectx_(ProvenanceContext(ctx)),
        costed_counter_(ectx_.Registry().GetCounter("plan.candidates_costed")),
        dropped_counter_(
            ectx_.Registry().GetCounter("plan.placements_eliminated")) {}

  Result<QueryPlan> Run() {
    ISPHERE_RETURN_NOT_OK(Prepare());
    TraceSpan root = ectx_.StartSpan("plan.query");
    if (root.enabled()) {
      root.SetInt("relations", static_cast<int64_t>(relations_.size()))
          .SetInt("joins", static_cast<int64_t>(input_.spec->joins.size()));
    }
    batch_ctx_ = ectx_.Under(root);

    ISPHERE_RETURN_NOT_OK(BaseLevel(&root));
    const int n = static_cast<int>(relations_.size());
    for (int level = 2; level <= n; ++level) {
      ISPHERE_RETURN_NOT_OK(JoinLevel(level, &root));
    }
    ISPHERE_RETURN_NOT_OK(FinishCandidates(&root));

    for (const auto& sites : dp_) {
      plan_.dp_entries += static_cast<int64_t>(sites.size());
    }
    std::sort(plan_.candidates.begin(), plan_.candidates.end(),
              [](const QueryPlanCandidate& a, const QueryPlanCandidate& b) {
                return a.total_seconds < b.total_seconds;
              });
    if (root.enabled()) {
      root.SetString("best_system",
                     plan_.nodes[plan_.candidates.front().root].system)
          .SetDouble("best_total_seconds",
                     plan_.candidates.front().total_seconds)
          .SetInt("candidates", static_cast<int64_t>(plan_.candidates.size()))
          .SetInt("pruned", static_cast<int64_t>(plan_.pruned.size()))
          .SetInt("dp_entries", plan_.dp_entries);
    }
    return std::move(plan_);
  }

 private:
  Status Prepare() {
    if (input_.spec == nullptr) {
      return Status::InvalidArgument("null query spec");
    }
    if (options_.max_dp_relations < 1 || options_.max_dp_relations > 16) {
      return Status::InvalidArgument(
          "planner.max_dp_relations must be in [1, 16]");
    }
    if (options_.prune_factor != 0.0 && options_.prune_factor < 1.0) {
      return Status::InvalidArgument(
          "planner.prune_factor must be 0 (off) or >= 1");
    }
    const QuerySpec& spec = *input_.spec;
    ISPHERE_RETURN_NOT_OK(spec.Validate());
    if (input_.tables.size() != spec.relations.size()) {
      return Status::InvalidArgument(
          "resolved table list does not match the spec's relations");
    }
    if (static_cast<int>(spec.relations.size()) > options_.max_dp_relations) {
      return Status::InvalidArgument(
          "query spec exceeds planner.max_dp_relations");
    }
    if (input_.master.empty() || !input_.cost || !input_.transfer) {
      return Status::InvalidArgument("plan-search input is missing a hook");
    }

    const bool bare_scan = spec.relations.size() == 1 && spec.joins.empty() &&
                           !spec.aggregate.has_value();
    relations_.reserve(spec.relations.size());
    for (size_t i = 0; i < spec.relations.size(); ++i) {
      const QuerySpec::Relation& r = spec.relations[i];
      const rel::TableDef& def = input_.tables[i];
      RelationInfo info;
      info.table = r.table;
      info.location = def.location;
      info.base_rows = def.stats.num_rows;
      info.base_width = def.stats.row_bytes;
      info.proj = r.projected_bytes >= 0 ? r.projected_bytes
                                         : def.stats.row_bytes;
      // A relation is scanned when it has a real filter, or when the scan
      // IS the query (a bare single-relation spec).
      info.scanned = bare_scan || r.filter_selectivity < 1.0;
      info.rows = info.scanned
                      ? static_cast<int64_t>(std::llround(
                            r.filter_selectivity *
                            static_cast<double>(info.base_rows)))
                      : info.base_rows;
      info.width = info.scanned ? info.proj : info.base_width;
      info.profile = ProfileFromTable(def);
      relations_.push_back(std::move(info));
    }
    const size_t n = relations_.size();
    adjacency_.assign(n, 0);
    for (const QuerySpec::JoinPredicate& p : spec.joins) {
      adjacency_[static_cast<size_t>(p.left)] |= uint64_t{1}
                                                 << static_cast<unsigned>(
                                                     p.right);
      adjacency_[static_cast<size_t>(p.right)] |= uint64_t{1}
                                                  << static_cast<unsigned>(
                                                      p.left);
    }
    dp_.assign(size_t{1} << n, {});
    mask_stats_.assign(size_t{1} << n, MaskStats{});
    mask_stats_ready_.assign(size_t{1} << n, 0);
    return Status::OK();
  }

  bool Connected(uint64_t mask) const {
    if (mask == 0) return false;
    uint64_t reach = mask & (~mask + 1);
    uint64_t frontier = reach;
    while (frontier != 0) {
      uint64_t next = 0;
      uint64_t scan = frontier;
      while (scan != 0) {
        const int i = std::countr_zero(scan);
        scan &= scan - 1;
        next |= adjacency_[static_cast<size_t>(i)];
      }
      frontier = next & mask & ~reach;
      reach |= frontier;
    }
    return reach == mask;
  }

  bool HasCrossPredicate(uint64_t a, uint64_t b) const {
    for (const QuerySpec::JoinPredicate& p : input_.spec->joins) {
      const uint64_t l = uint64_t{1} << static_cast<unsigned>(p.left);
      const uint64_t r = uint64_t{1} << static_cast<unsigned>(p.right);
      if (((l & a) && (r & b)) || ((l & b) && (r & a))) return true;
    }
    return false;
  }

  /// Distinct count of a join-predicate endpoint within its relation,
  /// capped by the relation's post-filter cardinality when it is scanned.
  Result<int64_t> EndpointDistinct(int relation, const std::string& column) {
    const RelationInfo& info = relations_[static_cast<size_t>(relation)];
    int64_t d = info.profile.DistinctOr(column, info.base_rows);
    if (info.scanned) d = DistinctAfter(d, info.rows);
    if (d <= 0) return Status::InvalidArgument("non-positive distinct count");
    return d;
  }

  /// Split-independent subset statistics, memoized per mask. Cardinality:
  /// the product of member cardinalities times the selectivity of every
  /// predicate internal to the subset, with the same operand order as
  /// rel::EstimateJoinCardinality so two-relation specs reproduce it
  /// bit for bit.
  Result<MaskStats> StatsFor(uint64_t mask) {
    if (mask_stats_ready_[mask]) return mask_stats_[mask];
    MaskStats stats;
    if (std::popcount(mask) == 1) {
      const RelationInfo& info =
          relations_[static_cast<size_t>(std::countr_zero(mask))];
      stats.rows = info.rows;
      stats.width = info.width;
      stats.proj = info.proj;
    } else {
      double acc = 1.0;
      int64_t width = 0;
      uint64_t scan = mask;
      while (scan != 0) {
        const RelationInfo& info =
            relations_[static_cast<size_t>(std::countr_zero(scan))];
        scan &= scan - 1;
        acc *= static_cast<double>(info.rows);
        width += info.proj;
      }
      for (const QuerySpec::JoinPredicate& p : input_.spec->joins) {
        const uint64_t l = uint64_t{1} << static_cast<unsigned>(p.left);
        const uint64_t r = uint64_t{1} << static_cast<unsigned>(p.right);
        if (!(l & mask) || !(r & mask)) continue;
        ISPHERE_ASSIGN_OR_RETURN(int64_t dl,
                                 EndpointDistinct(p.left, p.column));
        ISPHERE_ASSIGN_OR_RETURN(int64_t dr,
                                 EndpointDistinct(p.right, p.column));
        const double denom = static_cast<double>(std::max(dl, dr));
        acc = acc / denom * p.extra_selectivity;
      }
      // Clamp before llround: a pathological spec (huge cross products)
      // must saturate, not overflow into UB.
      if (acc > 9.0e18) acc = 9.0e18;
      stats.rows =
          std::max<int64_t>(1, static_cast<int64_t>(std::llround(acc)));
      stats.width = width;
      stats.proj = width;
    }
    mask_stats_[mask] = stats;
    mask_stats_ready_[mask] = 1;
    return stats;
  }

  std::string MaskLabel(uint64_t mask) const {
    std::string label = "{";
    uint64_t scan = mask;
    while (scan != 0) {
      const int i = std::countr_zero(scan);
      scan &= scan - 1;
      if (label.size() > 1) label += ",";
      label += relations_[static_cast<size_t>(i)].table;
    }
    label += "}";
    return label;
  }

  int AddTableNode(int relation) {
    const RelationInfo& info = relations_[static_cast<size_t>(relation)];
    QueryPlanNode node;
    node.kind = QueryPlanNode::Kind::kTable;
    node.system = info.location;
    node.label = info.table;
    node.relation_mask = uint64_t{1} << static_cast<unsigned>(relation);
    node.output_rows = info.base_rows;
    node.output_row_bytes = info.base_width;
    plan_.nodes.push_back(std::move(node));
    return static_cast<int>(plan_.nodes.size()) - 1;
  }

  void EmitCandidateSpan(TraceSpan* root, const QueryPlanNode& node) {
    TraceSpan span = root->Child("plan.candidate");
    if (!span.enabled()) return;
    span.SetString("system", node.system)
        .SetString("approach", node.approach)
        .SetDouble("transfer_seconds", node.transfer_seconds)
        .SetDouble("operator_seconds", node.operator_seconds)
        .SetDouble("total_seconds", node.subtree_seconds);
    if (!node.algorithm.empty()) span.SetString("algorithm", node.algorithm);
  }

  void EmitEliminatedSpan(TraceSpan* root, const PrunedSubplan& p) {
    TraceSpan span = root->Child("plan.candidate");
    if (!span.enabled()) return;
    span.SetString("system", p.system)
        .SetString("eliminated_reason", p.reason);
  }

  /// Installs a costed candidate into the DP table, recording whichever of
  /// the old and new entries loses as a dominated subplan.
  void Fold(uint64_t mask, const std::string& site, double cost, int node,
            QueryPlanNode::Kind stage, const std::string& description) {
    auto [it, inserted] = dp_[mask].emplace(site, DpEntry{cost, node});
    if (inserted) return;
    const bool wins = cost < it->second.cost;
    const int losing_node = wins ? it->second.node : node;
    PrunedSubplan pruned;
    pruned.kind = PrunedSubplan::Kind::kDominated;
    pruned.stage = stage;
    pruned.relation_mask = mask;
    pruned.system = site;
    pruned.subtree_seconds =
        plan_.nodes[static_cast<size_t>(losing_node)].subtree_seconds;
    pruned.reason = "dominated by a cheaper subplan for the same relations";
    pruned.description = description;
    plan_.pruned.push_back(std::move(pruned));
    if (wins) it->second = DpEntry{cost, node};
  }

  /// Level 1: register unfiltered base tables at rest and cost the scan
  /// candidates of filtered relations in one batch.
  Status BaseLevel(TraceSpan* root) {
    struct PendingScan {
      int relation;
      std::string host;
      double transfer;
    };
    std::vector<PlanCostRequest> requests;
    std::vector<PendingScan> pending;
    std::vector<int> table_nodes(relations_.size(), -1);

    for (size_t i = 0; i < relations_.size(); ++i) {
      const RelationInfo& info = relations_[i];
      const uint64_t bit = uint64_t{1} << i;
      table_nodes[i] = AddTableNode(static_cast<int>(i));
      if (!info.scanned) {
        dp_[bit].emplace(info.location, DpEntry{0.0, table_nodes[i]});
        continue;
      }
      rel::ScanQuery q;
      q.input = {info.base_rows, info.base_width};
      q.selectivity = input_.spec->relations[i].filter_selectivity;
      q.projected_bytes = info.proj;
      q.output_rows = info.rows;
      rel::SqlOperator op = rel::SqlOperator::MakeScan(q);
      ISPHERE_RETURN_NOT_OK(op.Validate());
      const std::set<std::string> hosts = {input_.master, info.location};
      for (const std::string& host : hosts) {
        double transfer = 0.0;
        if (info.location != host) {
          // QueryGrid evaluates simple predicates on the fly: only
          // survivors travel, already projected.
          ISPHERE_ASSIGN_OR_RETURN(
              transfer, input_.transfer(info.location, host, info.rows,
                                        info.proj));
        }
        requests.push_back({host, op});
        pending.push_back({static_cast<int>(i), host, transfer});
      }
    }
    if (requests.empty()) return Status::OK();

    std::vector<Result<core::HybridEstimate>> results =
        input_.cost(requests, batch_ctx_);
    if (results.size() != requests.size()) {
      return Status::Internal("batched costing returned a short batch");
    }
    for (size_t i = 0; i < pending.size(); ++i) {
      const PendingScan& c = pending[i];
      const RelationInfo& info = relations_[static_cast<size_t>(c.relation)];
      const uint64_t bit = uint64_t{1} << static_cast<unsigned>(c.relation);
      if (!results[i].ok()) {
        ISPHERE_RETURN_NOT_OK(RecordFailure(
            results[i].status(), QueryPlanNode::Kind::kScan, bit, c.host,
            /*via=*/"", "scan(" + info.table + ") at " + c.host, root));
        continue;
      }
      QueryPlanNode node;
      node.kind = QueryPlanNode::Kind::kScan;
      node.system = c.host;
      node.label = info.table;
      node.relation_mask = bit;
      node.output_rows = info.rows;
      node.output_row_bytes = info.proj;
      node.transfer_seconds = c.transfer;
      FillNodeProvenance(c.host, input_.master, results[i].value(), &node);
      node.subtree_seconds = c.transfer + node.operator_seconds;
      node.op = requests[i].op;
      node.children = {table_nodes[static_cast<size_t>(c.relation)]};
      plan_.nodes.push_back(std::move(node));
      const int node_index = static_cast<int>(plan_.nodes.size()) - 1;
      costed_counter_->Increment();
      plan_.candidates_costed++;
      EmitCandidateSpan(root, plan_.nodes.back());
      Fold(bit, c.host, plan_.nodes.back().subtree_seconds, node_index,
           QueryPlanNode::Kind::kScan,
           "scan(" + info.table + ") at " + c.host);
    }
    return Status::OK();
  }

  /// One DP level: every connected subset of `level` relations, split into
  /// every canonical connected partition, joined on every candidate site —
  /// all costed through a single batch.
  Status JoinLevel(int level, TraceSpan* root) {
    struct PendingJoin {
      uint64_t mask;
      std::string host;
      double left_cost, right_cost;
      double transfer_left, transfer_right;
      int left_node, right_node;
      std::string description;
    };
    std::vector<PlanCostRequest> requests;
    std::vector<PendingJoin> pending;

    const size_t n = relations_.size();
    const uint64_t limit = uint64_t{1} << n;
    for (uint64_t mask = 1; mask < limit; ++mask) {
      if (std::popcount(mask) != level) continue;
      if (!Connected(mask)) continue;
      const uint64_t low = mask & (~mask + 1);
      for (uint64_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        if (!(sub & low)) continue;  // canonical: sub keeps the lowest bit
        const uint64_t rest = mask ^ sub;
        if (!Connected(sub) || !Connected(rest)) continue;
        if (!HasCrossPredicate(sub, rest)) continue;
        ISPHERE_ASSIGN_OR_RETURN(MaskStats sub_stats, StatsFor(sub));
        ISPHERE_ASSIGN_OR_RETURN(MaskStats rest_stats, StatsFor(rest));
        // Orient so the right side is the smaller relation (engine
        // planners and formulas assume S is the build/broadcast side);
        // ties keep the canonical side on the left, matching the legacy
        // planners' strict-inequality swap.
        uint64_t left_mask = sub, right_mask = rest;
        MaskStats left_stats = sub_stats, right_stats = rest_stats;
        if (left_stats.rows < right_stats.rows) {
          std::swap(left_mask, right_mask);
          std::swap(left_stats, right_stats);
        }
        ISPHERE_ASSIGN_OR_RETURN(MaskStats out_stats, StatsFor(mask));
        rel::JoinQuery q;
        q.left = {left_stats.rows, left_stats.width};
        q.right = {right_stats.rows, right_stats.width};
        q.left_projected_bytes = left_stats.proj;
        q.right_projected_bytes = right_stats.proj;
        q.output_rows = out_stats.rows;
        // The independently-rounded side cardinalities can undercut the
        // subset estimate by a hair; cap at the |L| x |R| bound the
        // descriptor validation enforces. Never triggers for two base
        // relations (the wrapper-parity case), where the subset formula
        // is exactly the legacy one.
        const double bound = static_cast<double>(left_stats.rows) *
                             static_cast<double>(right_stats.rows);
        if (static_cast<double>(q.output_rows) > bound) {
          q.output_rows = static_cast<int64_t>(std::min(bound, 9.0e18));
        }
        rel::SqlOperator op = rel::SqlOperator::MakeJoin(q);
        ISPHERE_RETURN_NOT_OK(op.Validate());

        for (const auto& [left_site, left_entry] : dp_[left_mask]) {
          for (const auto& [right_site, right_entry] : dp_[right_mask]) {
            const std::set<std::string> hosts = {input_.master, left_site,
                                                 right_site};
            for (const std::string& host : hosts) {
              double transfer_left = 0.0, transfer_right = 0.0;
              if (left_site != host) {
                ISPHERE_ASSIGN_OR_RETURN(
                    transfer_left,
                    input_.transfer(left_site, host, left_stats.rows,
                                    left_stats.width));
              }
              if (right_site != host) {
                ISPHERE_ASSIGN_OR_RETURN(
                    transfer_right,
                    input_.transfer(right_site, host, right_stats.rows,
                                    right_stats.width));
              }
              requests.push_back({host, op});
              pending.push_back(
                  {mask, host, left_entry.cost, right_entry.cost,
                   transfer_left, transfer_right, left_entry.node,
                   right_entry.node,
                   "join(" + MaskLabel(left_mask) + "@" + left_site + ", " +
                       MaskLabel(right_mask) + "@" + right_site + ") at " +
                       host});
            }
          }
        }
      }
    }
    if (requests.empty()) return Status::OK();

    std::vector<Result<core::HybridEstimate>> results =
        input_.cost(requests, batch_ctx_);
    if (results.size() != requests.size()) {
      return Status::Internal("batched costing returned a short batch");
    }
    for (size_t i = 0; i < pending.size(); ++i) {
      const PendingJoin& c = pending[i];
      if (!results[i].ok()) {
        ISPHERE_RETURN_NOT_OK(RecordFailure(
            results[i].status(), QueryPlanNode::Kind::kJoin, c.mask, c.host,
            /*via=*/"", c.description, root));
        continue;
      }
      // Accumulation order is part of the wrapper bit-parity contract:
      // children, then left transfer, then right transfer, then operator.
      double cost = c.left_cost + c.right_cost;
      cost += c.transfer_left;
      cost += c.transfer_right;
      QueryPlanNode node;
      node.kind = QueryPlanNode::Kind::kJoin;
      node.system = c.host;
      node.relation_mask = c.mask;
      node.output_rows = requests[i].op.join.output_rows;
      node.output_row_bytes = requests[i].op.join.OutputRowBytes();
      node.transfer_seconds = c.transfer_left + c.transfer_right;
      FillNodeProvenance(c.host, input_.master, results[i].value(), &node);
      cost += node.operator_seconds;
      node.subtree_seconds = cost;
      node.op = requests[i].op;
      node.children = {c.left_node, c.right_node};
      plan_.nodes.push_back(std::move(node));
      const int node_index = static_cast<int>(plan_.nodes.size()) - 1;
      costed_counter_->Increment();
      plan_.candidates_costed++;
      EmitCandidateSpan(root, plan_.nodes.back());
      Fold(c.mask, c.host, cost, node_index, QueryPlanNode::Kind::kJoin,
           c.description);
    }

    // Heuristic pruning between levels: entries far costlier than the
    // cheapest same-subset entry cannot... actually can still win (a later
    // join may avoid a transfer), so this is explicitly a heuristic; it is
    // off by default and never applied to the final subset.
    if (options_.prune_factor >= 1.0 &&
        level < static_cast<int>(relations_.size())) {
      for (uint64_t mask = 1; mask < limit; ++mask) {
        if (std::popcount(mask) != level || dp_[mask].empty()) continue;
        double cheapest = dp_[mask].begin()->second.cost;
        for (const auto& [site, entry] : dp_[mask]) {
          cheapest = std::min(cheapest, entry.cost);
        }
        for (auto it = dp_[mask].begin(); it != dp_[mask].end();) {
          if (it->second.cost > options_.prune_factor * cheapest) {
            PrunedSubplan pruned;
            pruned.kind = PrunedSubplan::Kind::kPruned;
            pruned.stage = QueryPlanNode::Kind::kJoin;
            pruned.relation_mask = mask;
            pruned.system = it->first;
            pruned.subtree_seconds = it->second.cost;
            pruned.reason =
                "cost exceeds prune_factor x the cheapest same-subset entry";
            pruned.description =
                MaskLabel(mask) + "@" + it->first + " (prune_factor)";
            plan_.pruned.push_back(std::move(pruned));
            it = dp_[mask].erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    return Status::OK();
  }

  /// Turns the full-subset DP entries into root candidates, applying the
  /// optional aggregation stage (one batch) and the optional final relay
  /// to the master engine.
  Status FinishCandidates(TraceSpan* root) {
    const QuerySpec& spec = *input_.spec;
    const uint64_t full = (uint64_t{1} << relations_.size()) - 1;

    if (!spec.aggregate.has_value()) {
      for (const auto& [site, entry] : dp_[full]) {
        double result_transfer = 0.0;
        if (spec.result_to_master && site != input_.master) {
          ISPHERE_ASSIGN_OR_RETURN(MaskStats stats, StatsFor(full));
          ISPHERE_ASSIGN_OR_RETURN(
              result_transfer, input_.transfer(site, input_.master,
                                               stats.rows, stats.width));
        }
        plan_.candidates.push_back(
            {entry.node, result_transfer, entry.cost + result_transfer});
      }
      if (plan_.candidates.empty()) {
        return Status::FailedPrecondition(
            "no placement can execute this query spec");
      }
      return Status::OK();
    }

    const QuerySpec::Aggregate& agg = *spec.aggregate;
    ISPHERE_ASSIGN_OR_RETURN(MaskStats in_stats, StatsFor(full));
    // Group cardinality over the final relation set: the group column's
    // distinct count (from the owning relation, post-filter), capped by
    // the input cardinality.
    const RelationInfo& owner = relations_[static_cast<size_t>(agg.relation)];
    int64_t d = owner.profile.DistinctOr(agg.group_column, in_stats.rows);
    if (owner.scanned) d = DistinctAfter(d, owner.rows);
    const int64_t raw_groups = std::min(in_stats.rows, d);
    const int64_t groups =
        spec.joins.empty() ? raw_groups : std::max<int64_t>(1, raw_groups);
    rel::AggQuery q;
    q.input = {in_stats.rows, in_stats.width};
    q.output_rows = groups;
    q.output_row_bytes =
        kGroupKeyBytes + kAggregateValueBytes * agg.num_aggregates;
    q.num_aggregates = agg.num_aggregates;
    rel::SqlOperator op = rel::SqlOperator::MakeAgg(q);
    ISPHERE_RETURN_NOT_OK(op.Validate());

    struct PendingAgg {
      std::string join_site;
      std::string host;
      double input_cost;
      double transfer;
      int input_node;
    };
    std::vector<PlanCostRequest> requests;
    std::vector<PendingAgg> pending;
    for (const auto& [site, entry] : dp_[full]) {
      // The aggregation runs where the intermediate lies, or on the master.
      const std::set<std::string> hosts = {site, input_.master};
      for (const std::string& host : hosts) {
        double transfer = 0.0;
        if (host != site) {
          ISPHERE_ASSIGN_OR_RETURN(
              transfer, input_.transfer(site, host, in_stats.rows,
                                        in_stats.width));
        }
        requests.push_back({host, op});
        pending.push_back({site, host, entry.cost, transfer, entry.node});
      }
    }
    if (!requests.empty()) {
      std::vector<Result<core::HybridEstimate>> results =
          input_.cost(requests, batch_ctx_);
      if (results.size() != requests.size()) {
        return Status::Internal("batched costing returned a short batch");
      }
      for (size_t i = 0; i < pending.size(); ++i) {
        const PendingAgg& c = pending[i];
        const std::string description = "aggregate after " + MaskLabel(full) +
                                        "@" + c.join_site + " at " + c.host;
        if (!results[i].ok()) {
          ISPHERE_RETURN_NOT_OK(RecordFailure(
              results[i].status(), QueryPlanNode::Kind::kAggregate, full,
              c.host, /*via=*/c.join_site, description, root));
          continue;
        }
        double result_transfer = 0.0;
        if (spec.result_to_master && c.host != input_.master) {
          ISPHERE_ASSIGN_OR_RETURN(
              result_transfer,
              input_.transfer(c.host, input_.master, groups,
                              q.output_row_bytes));
        }
        double cost = c.input_cost;
        cost += c.transfer;
        QueryPlanNode node;
        node.kind = QueryPlanNode::Kind::kAggregate;
        node.system = c.host;
        node.relation_mask = full;
        node.output_rows = groups;
        node.output_row_bytes = q.output_row_bytes;
        node.transfer_seconds = c.transfer;
        FillNodeProvenance(c.host, input_.master, results[i].value(), &node);
        cost += node.operator_seconds;
        node.subtree_seconds = cost;
        node.op = requests[i].op;
        node.children = {c.input_node};
        plan_.nodes.push_back(std::move(node));
        const int node_index = static_cast<int>(plan_.nodes.size()) - 1;
        costed_counter_->Increment();
        plan_.candidates_costed++;
        EmitCandidateSpan(root, plan_.nodes.back());
        plan_.candidates.push_back(
            {node_index, result_transfer, cost + result_transfer});
      }
    }
    if (plan_.candidates.empty()) {
      return Status::FailedPrecondition(
          "no placement can execute this query spec");
    }
    return Status::OK();
  }

  /// Handles one failed costing result: elimination codes are recorded and
  /// skipped, anything else aborts the search.
  Status RecordFailure(const Status& status, QueryPlanNode::Kind stage,
                       uint64_t mask, const std::string& host,
                       const std::string& via, const std::string& description,
                       TraceSpan* root) {
    if (!IsEliminationCode(status.code())) return status;
    PrunedSubplan pruned;
    pruned.kind = PrunedSubplan::Kind::kEliminated;
    pruned.stage = stage;
    pruned.relation_mask = mask;
    pruned.system = host;
    pruned.via_system = via;
    pruned.reason = status.message();
    pruned.description = description;
    EmitEliminatedSpan(root, pruned);
    plan_.pruned.push_back(std::move(pruned));
    dropped_counter_->Increment();
    return Status::OK();
  }

  const PlanSearchInput& input_;
  const PlannerOptions& options_;
  core::EstimateContext ectx_;
  core::EstimateContext batch_ctx_;
  Counter* costed_counter_;
  Counter* dropped_counter_;
  std::vector<RelationInfo> relations_;
  std::vector<uint64_t> adjacency_;
  /// dp_[mask][site]: cheapest way to have `mask`'s join result on `site`.
  std::vector<std::map<std::string, DpEntry>> dp_;
  std::vector<MaskStats> mask_stats_;
  std::vector<char> mask_stats_ready_;
  QueryPlan plan_;
};

}  // namespace

Result<PlannerOptions> PlannerOptions::FromProperties(
    const Properties& props) {
  PlannerOptions options;
  if (props.Contains(kPlannerMaxDpRelationsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t v,
                             props.GetInt(kPlannerMaxDpRelationsKey));
    if (v < 1 || v > 16) {
      return Status::InvalidArgument(
          "planner.max_dp_relations must be in [1, 16]");
    }
    options.max_dp_relations = static_cast<int>(v);
  }
  if (props.Contains(kPlannerPruneFactorKey)) {
    ISPHERE_ASSIGN_OR_RETURN(double v,
                             props.GetDouble(kPlannerPruneFactorKey));
    if (v != 0.0 && v < 1.0) {
      return Status::InvalidArgument(
          "planner.prune_factor must be 0 (off) or >= 1");
    }
    options.prune_factor = v;
  }
  return options;
}

Status QuerySpec::Validate() const {
  if (relations.empty()) {
    return Status::InvalidArgument("query spec has no relations");
  }
  if (relations.size() > 62) {
    return Status::InvalidArgument("query spec has too many relations");
  }
  const int n = static_cast<int>(relations.size());
  for (const Relation& r : relations) {
    if (r.table.empty()) {
      return Status::InvalidArgument("relation table name is empty");
    }
    if (r.filter_selectivity < 0.0 || r.filter_selectivity > 1.0) {
      return Status::InvalidArgument("selectivity must be in [0, 1]");
    }
    if (r.projected_bytes < kFullRowWidth) {
      return Status::InvalidArgument("negative projected size");
    }
  }
  for (const JoinPredicate& p : joins) {
    if (p.left < 0 || p.left >= n || p.right < 0 || p.right >= n) {
      return Status::InvalidArgument(
          "join predicate relation index out of range");
    }
    if (p.left == p.right) {
      return Status::InvalidArgument(
          "join predicate joins a relation to itself");
    }
    if (p.column.empty()) {
      return Status::InvalidArgument("join predicate column is empty");
    }
    if (p.extra_selectivity <= 0.0 || p.extra_selectivity > 1.0) {
      return Status::InvalidArgument("extra_selectivity must be in (0, 1]");
    }
  }
  if (n > 1) {
    // Union-find over the join edges: the DP only combines connected
    // subsets, so a disconnected graph could never complete a plan.
    std::vector<int> parent(relations.size());
    for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
    auto find = [&parent](int x) {
      while (parent[static_cast<size_t>(x)] != x) {
        parent[static_cast<size_t>(x)] =
            parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
        x = parent[static_cast<size_t>(x)];
      }
      return x;
    };
    for (const JoinPredicate& p : joins) {
      parent[static_cast<size_t>(find(p.left))] = find(p.right);
    }
    for (int i = 1; i < n; ++i) {
      if (find(i) != find(0)) {
        return Status::InvalidArgument(
            "join graph does not connect all relations");
      }
    }
  } else if (!joins.empty()) {
    return Status::InvalidArgument(
        "join predicate relation index out of range");
  }
  if (aggregate.has_value()) {
    if (aggregate->relation < 0 || aggregate->relation >= n) {
      return Status::InvalidArgument("aggregate relation index out of range");
    }
    if (aggregate->group_column.empty()) {
      return Status::InvalidArgument("aggregate group column is empty");
    }
    if (aggregate->num_aggregates < 1) {
      return Status::InvalidArgument("need at least one aggregate function");
    }
  }
  return Status::OK();
}

Result<QueryPlanCandidate> QueryPlan::best() const {
  if (candidates.empty()) {
    return Status::FailedPrecondition("query plan has no candidates");
  }
  return candidates.front();
}

Result<const QueryPlanNode*> QueryPlan::root() const {
  if (candidates.empty()) {
    return Status::FailedPrecondition("query plan has no candidates");
  }
  return &nodes[static_cast<size_t>(candidates.front().root)];
}

Result<QueryPlan> SearchPlan(const PlanSearchInput& input,
                             const PlannerOptions& options,
                             const core::EstimateContext& ctx) {
  Searcher searcher(input, options, ctx);
  return searcher.Run();
}

}  // namespace intellisphere::fed
