#include "federation/intellisphere.h"

#include <algorithm>
#include <set>

namespace intellisphere::fed {

namespace {

constexpr int64_t kKeyBytes = 4;       // a1 width
constexpr int64_t kAggregateBytes = 8;  // one SUM() output

/// A host that cannot run the operator (Unsupported engine / no applicable
/// algorithm) is simply not a candidate; any other error aborts planning.
bool IsEliminationCode(StatusCode code) {
  return code == StatusCode::kUnsupported ||
         code == StatusCode::kFailedPrecondition;
}

/// Planners always collect full provenance — the plan they return is the
/// EXPLAIN source of truth — whatever detail the caller's context asks for.
core::EstimateContext ProvenanceContext(const core::EstimateContext& ctx) {
  core::EstimateContext out = ctx;
  out.detail = core::EstimateDetail::kProvenance;
  return out;
}

/// The approach string a placement reports: the master engine's analytic
/// model is "local"; remote hosts report their profile's approach.
std::string ApproachLabel(const std::string& host,
                          const core::HybridEstimate& est) {
  return host == kTeradataSystemName
             ? "local"
             : core::CostingApproachName(est.approach_used);
}

/// Copies an estimate's costing provenance into a placement option.
void FillOptionProvenance(const std::string& host,
                          const core::HybridEstimate& est,
                          PlacementOption* option) {
  option->operator_seconds = est.seconds;
  option->approach = ApproachLabel(host, est);
  option->algorithm = est.algorithm;
  option->algorithm_candidates = est.candidates;
  option->eliminated_algorithms = est.eliminated;
  option->used_remedy = est.used_remedy;
  option->remedy_alpha = est.remedy_alpha;
  option->fell_back_reason = est.fell_back_reason;
}

/// Closes out a candidate span with the option's final numbers.
void FinishCandidateSpan(TraceSpan* span, const PlacementOption& option) {
  if (!span->enabled()) return;
  span->SetString("system", option.system)
      .SetString("approach", option.approach)
      .SetDouble("transfer_seconds", option.transfer_seconds)
      .SetDouble("operator_seconds", option.operator_seconds)
      .SetDouble("total_seconds", option.total_seconds());
  if (!option.algorithm.empty()) {
    span->SetString("algorithm", option.algorithm);
  }
}

/// Closes out a candidate span for an eliminated host.
void FinishEliminatedSpan(TraceSpan* span, const EliminatedPlacement& e) {
  if (!span->enabled()) return;
  span->SetString("system", e.system).SetString("eliminated_reason", e.reason);
}

}  // namespace

Result<PlacementOption> PlacementPlan::best() const {
  if (options.empty()) {
    return Status::FailedPrecondition("placement plan has no options");
  }
  return options.front();
}

Result<PipelinePlacement> PipelinePlan::best() const {
  if (options.empty()) {
    return Status::FailedPrecondition("pipeline plan has no options");
  }
  return options.front();
}

Status IntelliSphere::RegisterRemoteSystem(
    std::unique_ptr<remote::RemoteSystem> system, core::CostingProfile profile,
    ConnectorParams connector) {
  if (system == nullptr) return Status::InvalidArgument("null remote system");
  std::string name = system->name();
  if (name == kTeradataSystemName) {
    return Status::InvalidArgument(
        "'teradata' is reserved for the master engine");
  }
  if (systems_.count(name)) {
    return Status::AlreadyExists("remote system '" + name + "'");
  }
  ISPHERE_RETURN_NOT_OK(estimator_.RegisterSystem(name, std::move(profile)));
  ISPHERE_RETURN_NOT_OK(grid_.RegisterConnector(name, connector));
  systems_.emplace(std::move(name), std::move(system));
  return Status::OK();
}

Status IntelliSphere::RegisterTable(rel::TableDef def) {
  if (def.location != kTeradataSystemName && !systems_.count(def.location)) {
    return Status::InvalidArgument("table '" + def.name +
                                   "' placed on unregistered system '" +
                                   def.location + "'");
  }
  return catalog_.Add(std::move(def));
}

Result<rel::TableDef> IntelliSphere::GetTable(const std::string& name) const {
  return catalog_.Get(name);
}

Result<remote::RemoteSystem*> IntelliSphere::GetSystem(
    const std::string& name) const {
  auto it = systems_.find(name);
  if (it == systems_.end()) {
    return Status::NotFound("remote system '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> IntelliSphere::SystemNames() const {
  std::vector<std::string> names;
  for (const auto& [name, sys] : systems_) names.push_back(name);
  return names;
}

Status IntelliSphere::AttachEstimationService(
    const serving::EstimationService* service) {
  if (service != nullptr && service->estimator() != &estimator_) {
    return Status::InvalidArgument(
        "estimation service wraps a different CostEstimator than this "
        "facade's");
  }
  serving_ = service;
  return Status::OK();
}

Result<core::HybridEstimate> IntelliSphere::HostEstimate(
    const std::string& system, const rel::SqlOperator& op,
    const core::EstimateContext& ctx) const {
  if (system == kTeradataSystemName) {
    core::HybridEstimate est;
    ISPHERE_ASSIGN_OR_RETURN(est.seconds, local_model_.EstimateSeconds(op));
    return est;
  }
  if (serving_ != nullptr) {
    serving::EstimateRequest request;
    request.system = system;
    request.op = op;
    request.now = ctx.now;
    request.policy_override = ctx.policy_override;
    return serving_->Estimate(request, ctx);
  }
  return estimator_.Estimate(system, op, ctx);
}

Result<PlacementPlan> IntelliSphere::PlanJoin(
    const std::string& left_table, const std::string& right_table,
    int64_t left_projected_bytes, int64_t right_projected_bytes,
    double extra_selectivity, const core::EstimateContext& ctx) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef l, catalog_.Get(left_table));
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef r, catalog_.Get(right_table));
  // Orient so the right side of the operator is the smaller relation
  // (engine planners and formulas assume S is the build/broadcast side).
  if (l.stats.num_rows < r.stats.num_rows) {
    std::swap(l, r);
    std::swap(left_projected_bytes, right_projected_bytes);
  }
  ISPHERE_ASSIGN_OR_RETURN(
      int64_t out_rows,
      rel::EstimateJoinCardinality(l, r, "a1", extra_selectivity));

  rel::JoinQuery q;
  q.left = {l.stats.num_rows, l.stats.row_bytes};
  q.right = {r.stats.num_rows, r.stats.row_bytes};
  q.left_projected_bytes = left_projected_bytes;
  q.right_projected_bytes = right_projected_bytes;
  q.output_rows = out_rows;
  rel::SqlOperator op = rel::SqlOperator::MakeJoin(q);
  ISPHERE_RETURN_NOT_OK(op.Validate());

  core::EstimateContext ectx = ProvenanceContext(ctx);
  Counter* costed = ectx.Registry().GetCounter("plan.candidates_costed");
  Counter* dropped = ectx.Registry().GetCounter("plan.placements_eliminated");
  TraceSpan root = ectx.StartSpan("plan.join");
  if (root.enabled()) {
    root.SetString("left_table", left_table)
        .SetString("right_table", right_table)
        .SetInt("output_rows", out_rows);
  }

  // Candidate hosts: every system owning an input, plus Teradata
  // (Section 2, "Query Plans").
  std::set<std::string> hosts = {std::string(kTeradataSystemName),
                                 l.location, r.location};
  PlacementPlan plan;
  plan.op = op;
  for (const std::string& host : hosts) {
    TraceSpan candidate = root.Child("plan.candidate");
    PlacementOption option;
    option.system = host;
    // Inputs not already on the host are relayed through Teradata.
    if (l.location != host) {
      ISPHERE_ASSIGN_OR_RETURN(
          double t, grid_.RelaySeconds(l.location, host, l.stats.num_rows,
                                       l.stats.row_bytes));
      option.transfer_seconds += t;
    }
    if (r.location != host) {
      ISPHERE_ASSIGN_OR_RETURN(
          double t, grid_.RelaySeconds(r.location, host, r.stats.num_rows,
                                       r.stats.row_bytes));
      option.transfer_seconds += t;
    }
    auto op_cost = HostEstimate(host, op, ectx.Under(candidate));
    if (!op_cost.ok()) {
      if (IsEliminationCode(op_cost.status().code())) {
        EliminatedPlacement e{host, op_cost.status().message()};
        FinishEliminatedSpan(&candidate, e);
        plan.eliminated.push_back(std::move(e));
        dropped->Increment();
        continue;
      }
      return op_cost.status();
    }
    FillOptionProvenance(host, op_cost.value(), &option);
    FinishCandidateSpan(&candidate, option);
    costed->Increment();
    plan.options.push_back(std::move(option));
  }
  if (plan.options.empty()) {
    return Status::FailedPrecondition("no system can execute this join");
  }
  std::sort(plan.options.begin(), plan.options.end(),
            [](const PlacementOption& a, const PlacementOption& b) {
              return a.total_seconds() < b.total_seconds();
            });
  if (root.enabled()) {
    root.SetString("best_system", plan.options.front().system)
        .SetDouble("best_total_seconds",
                   plan.options.front().total_seconds());
  }
  return plan;
}

Result<PlacementPlan> IntelliSphere::PlanJoin(const std::string& left_table,
                                              const std::string& right_table,
                                              int64_t left_projected_bytes,
                                              int64_t right_projected_bytes,
                                              double extra_selectivity,
                                              double now) const {
  return PlanJoin(left_table, right_table, left_projected_bytes,
                  right_projected_bytes, extra_selectivity,
                  core::EstimateContext::AtTime(now));
}

Result<PlacementPlan> IntelliSphere::PlanAgg(
    const std::string& table, const std::string& group_column,
    int num_aggregates, const core::EstimateContext& ctx) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef t, catalog_.Get(table));
  ISPHERE_ASSIGN_OR_RETURN(int64_t groups,
                           rel::EstimateGroupCardinality(t, group_column));
  rel::AggQuery q;
  q.input = {t.stats.num_rows, t.stats.row_bytes};
  q.output_rows = groups;
  q.output_row_bytes = kKeyBytes + kAggregateBytes * num_aggregates;
  q.num_aggregates = num_aggregates;
  rel::SqlOperator op = rel::SqlOperator::MakeAgg(q);
  ISPHERE_RETURN_NOT_OK(op.Validate());

  core::EstimateContext ectx = ProvenanceContext(ctx);
  Counter* costed = ectx.Registry().GetCounter("plan.candidates_costed");
  Counter* dropped = ectx.Registry().GetCounter("plan.placements_eliminated");
  TraceSpan root = ectx.StartSpan("plan.agg");
  if (root.enabled()) {
    root.SetString("table", table)
        .SetString("group_column", group_column)
        .SetInt("groups", groups);
  }

  std::set<std::string> hosts = {std::string(kTeradataSystemName),
                                 t.location};
  PlacementPlan plan;
  plan.op = op;
  for (const std::string& host : hosts) {
    TraceSpan candidate = root.Child("plan.candidate");
    PlacementOption option;
    option.system = host;
    if (t.location != host) {
      ISPHERE_ASSIGN_OR_RETURN(
          double tr, grid_.RelaySeconds(t.location, host, t.stats.num_rows,
                                        t.stats.row_bytes));
      option.transfer_seconds += tr;
    }
    auto op_cost = HostEstimate(host, op, ectx.Under(candidate));
    if (!op_cost.ok()) {
      if (IsEliminationCode(op_cost.status().code())) {
        EliminatedPlacement e{host, op_cost.status().message()};
        FinishEliminatedSpan(&candidate, e);
        plan.eliminated.push_back(std::move(e));
        dropped->Increment();
        continue;
      }
      return op_cost.status();
    }
    FillOptionProvenance(host, op_cost.value(), &option);
    FinishCandidateSpan(&candidate, option);
    costed->Increment();
    plan.options.push_back(std::move(option));
  }
  if (plan.options.empty()) {
    return Status::FailedPrecondition("no system can execute this aggregation");
  }
  std::sort(plan.options.begin(), plan.options.end(),
            [](const PlacementOption& a, const PlacementOption& b) {
              return a.total_seconds() < b.total_seconds();
            });
  if (root.enabled()) {
    root.SetString("best_system", plan.options.front().system)
        .SetDouble("best_total_seconds",
                   plan.options.front().total_seconds());
  }
  return plan;
}

Result<PlacementPlan> IntelliSphere::PlanAgg(const std::string& table,
                                             const std::string& group_column,
                                             int num_aggregates,
                                             double now) const {
  return PlanAgg(table, group_column, num_aggregates,
                 core::EstimateContext::AtTime(now));
}

Result<PlacementPlan> IntelliSphere::PlanScan(
    const std::string& table, double selectivity, int64_t projected_bytes,
    const core::EstimateContext& ctx) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef t, catalog_.Get(table));
  ISPHERE_ASSIGN_OR_RETURN(int64_t out_rows,
                           rel::EstimateFilterCardinality(t, selectivity));
  rel::ScanQuery q;
  q.input = {t.stats.num_rows, t.stats.row_bytes};
  q.selectivity = selectivity;
  q.projected_bytes = projected_bytes;
  q.output_rows = out_rows;
  rel::SqlOperator op = rel::SqlOperator::MakeScan(q);
  ISPHERE_RETURN_NOT_OK(op.Validate());

  core::EstimateContext ectx = ProvenanceContext(ctx);
  Counter* costed = ectx.Registry().GetCounter("plan.candidates_costed");
  Counter* dropped = ectx.Registry().GetCounter("plan.placements_eliminated");
  TraceSpan root = ectx.StartSpan("plan.scan");
  if (root.enabled()) {
    root.SetString("table", table)
        .SetDouble("selectivity", selectivity)
        .SetInt("output_rows", out_rows);
  }

  std::set<std::string> hosts = {std::string(kTeradataSystemName),
                                 t.location};
  PlacementPlan plan;
  plan.op = op;
  for (const std::string& host : hosts) {
    TraceSpan candidate = root.Child("plan.candidate");
    PlacementOption option;
    option.system = host;
    if (t.location != host) {
      // QueryGrid evaluates simple predicates on the fly: only survivors
      // travel, already projected.
      ISPHERE_ASSIGN_OR_RETURN(
          double tr,
          grid_.RelaySeconds(t.location, host, out_rows, projected_bytes));
      option.transfer_seconds += tr;
    }
    auto op_cost = HostEstimate(host, op, ectx.Under(candidate));
    if (!op_cost.ok()) {
      if (IsEliminationCode(op_cost.status().code())) {
        EliminatedPlacement e{host, op_cost.status().message()};
        FinishEliminatedSpan(&candidate, e);
        plan.eliminated.push_back(std::move(e));
        dropped->Increment();
        continue;
      }
      return op_cost.status();
    }
    FillOptionProvenance(host, op_cost.value(), &option);
    FinishCandidateSpan(&candidate, option);
    costed->Increment();
    plan.options.push_back(std::move(option));
  }
  if (plan.options.empty()) {
    return Status::FailedPrecondition("no system can execute this scan");
  }
  std::sort(plan.options.begin(), plan.options.end(),
            [](const PlacementOption& a, const PlacementOption& b) {
              return a.total_seconds() < b.total_seconds();
            });
  if (root.enabled()) {
    root.SetString("best_system", plan.options.front().system)
        .SetDouble("best_total_seconds",
                   plan.options.front().total_seconds());
  }
  return plan;
}

Result<PlacementPlan> IntelliSphere::PlanScan(const std::string& table,
                                              double selectivity,
                                              int64_t projected_bytes,
                                              double now) const {
  return PlanScan(table, selectivity, projected_bytes,
                  core::EstimateContext::AtTime(now));
}

Result<PipelinePlan> IntelliSphere::PlanJoinThenAgg(
    const std::string& left_table, const std::string& right_table,
    int64_t left_projected_bytes, int64_t right_projected_bytes,
    double extra_selectivity, const std::string& group_column,
    int num_aggregates, const core::EstimateContext& ctx) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef l, catalog_.Get(left_table));
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef r, catalog_.Get(right_table));
  if (l.stats.num_rows < r.stats.num_rows) {
    std::swap(l, r);
    std::swap(left_projected_bytes, right_projected_bytes);
  }
  ISPHERE_ASSIGN_OR_RETURN(
      int64_t join_out,
      rel::EstimateJoinCardinality(l, r, "a1", extra_selectivity));

  rel::JoinQuery jq;
  jq.left = {l.stats.num_rows, l.stats.row_bytes};
  jq.right = {r.stats.num_rows, r.stats.row_bytes};
  jq.left_projected_bytes = left_projected_bytes;
  jq.right_projected_bytes = right_projected_bytes;
  jq.output_rows = join_out;
  rel::SqlOperator join_op = rel::SqlOperator::MakeJoin(jq);
  ISPHERE_RETURN_NOT_OK(join_op.Validate());

  // Group cardinality over the join result: the group column's distinct
  // count (from the owning base table), capped by the join cardinality.
  int64_t groups =
      std::min(join_out, l.stats.DistinctOr(group_column, join_out));
  rel::AggQuery aq;
  aq.input = {join_out, jq.OutputRowBytes()};
  aq.output_rows = std::max<int64_t>(1, groups);
  aq.output_row_bytes = kKeyBytes + kAggregateBytes * num_aggregates;
  aq.num_aggregates = num_aggregates;
  rel::SqlOperator agg_op = rel::SqlOperator::MakeAgg(aq);
  ISPHERE_RETURN_NOT_OK(agg_op.Validate());

  core::EstimateContext ectx = ProvenanceContext(ctx);
  Counter* costed = ectx.Registry().GetCounter("plan.candidates_costed");
  Counter* dropped = ectx.Registry().GetCounter("plan.placements_eliminated");
  TraceSpan root = ectx.StartSpan("plan.pipeline");
  if (root.enabled()) {
    root.SetString("left_table", left_table)
        .SetString("right_table", right_table)
        .SetString("group_column", group_column);
  }

  std::set<std::string> join_hosts = {std::string(kTeradataSystemName),
                                      l.location, r.location};
  PipelinePlan plan;
  plan.join_op = join_op;
  plan.agg_op = agg_op;
  for (const std::string& jh : join_hosts) {
    TraceSpan join_span = root.Child("plan.join_host");
    if (join_span.enabled()) join_span.SetString("system", jh);
    auto join_cost = HostEstimate(jh, join_op, ectx.Under(join_span));
    if (!join_cost.ok()) {
      if (IsEliminationCode(join_cost.status().code())) {
        EliminatedPlacement e{jh, "join: " + join_cost.status().message()};
        FinishEliminatedSpan(&join_span, e);
        plan.eliminated.push_back(std::move(e));
        dropped->Increment();
        continue;
      }
      return join_cost.status();
    }
    const core::HybridEstimate& je = join_cost.value();
    join_span.End();
    double input_transfer = 0.0;
    if (l.location != jh) {
      ISPHERE_ASSIGN_OR_RETURN(
          double t, grid_.RelaySeconds(l.location, jh, l.stats.num_rows,
                                       l.stats.row_bytes));
      input_transfer += t;
    }
    if (r.location != jh) {
      ISPHERE_ASSIGN_OR_RETURN(
          double t, grid_.RelaySeconds(r.location, jh, r.stats.num_rows,
                                       r.stats.row_bytes));
      input_transfer += t;
    }
    // The aggregation runs where the intermediate lies, or on Teradata.
    std::set<std::string> agg_hosts = {jh,
                                       std::string(kTeradataSystemName)};
    for (const std::string& ah : agg_hosts) {
      TraceSpan candidate = root.Child("plan.candidate");
      auto agg_cost = HostEstimate(ah, agg_op, ectx.Under(candidate));
      if (!agg_cost.ok()) {
        if (IsEliminationCode(agg_cost.status().code())) {
          EliminatedPlacement e{
              ah, "aggregation after join on " + jh + ": " +
                      agg_cost.status().message()};
          FinishEliminatedSpan(&candidate, e);
          plan.eliminated.push_back(std::move(e));
          dropped->Increment();
          continue;
        }
        return agg_cost.status();
      }
      const core::HybridEstimate& ae = agg_cost.value();
      PipelinePlacement p;
      p.join_system = jh;
      p.agg_system = ah;
      p.input_transfer_seconds = input_transfer;
      p.join_seconds = je.seconds;
      p.agg_seconds = ae.seconds;
      p.join_approach = ApproachLabel(jh, je);
      p.join_algorithm = je.algorithm;
      p.agg_approach = ApproachLabel(ah, ae);
      p.agg_algorithm = ae.algorithm;
      if (ah != jh) {
        ISPHERE_ASSIGN_OR_RETURN(
            p.interm_transfer_seconds,
            grid_.RelaySeconds(jh, ah, join_out, jq.OutputRowBytes()));
      }
      if (ah != kTeradataSystemName) {
        ISPHERE_ASSIGN_OR_RETURN(
            p.result_transfer_seconds,
            grid_.RelaySeconds(ah, kTeradataSystemName, aq.output_rows,
                               aq.output_row_bytes));
      }
      if (candidate.enabled()) {
        candidate.SetString("join_system", jh)
            .SetString("agg_system", ah)
            .SetDouble("total_seconds", p.total_seconds());
      }
      costed->Increment();
      plan.options.push_back(std::move(p));
    }
  }
  if (plan.options.empty()) {
    return Status::FailedPrecondition("no placement can run this pipeline");
  }
  std::sort(plan.options.begin(), plan.options.end(),
            [](const PipelinePlacement& a, const PipelinePlacement& b) {
              return a.total_seconds() < b.total_seconds();
            });
  if (root.enabled()) {
    root.SetString("best_join_system", plan.options.front().join_system)
        .SetString("best_agg_system", plan.options.front().agg_system)
        .SetDouble("best_total_seconds",
                   plan.options.front().total_seconds());
  }
  return plan;
}

Result<PipelinePlan> IntelliSphere::PlanJoinThenAgg(
    const std::string& left_table, const std::string& right_table,
    int64_t left_projected_bytes, int64_t right_projected_bytes,
    double extra_selectivity, const std::string& group_column,
    int num_aggregates, double now) const {
  return PlanJoinThenAgg(left_table, right_table, left_projected_bytes,
                         right_projected_bytes, extra_selectivity,
                         group_column, num_aggregates,
                         core::EstimateContext::AtTime(now));
}

Result<double> IntelliSphere::ExecuteBest(const PlacementPlan& plan) {
  if (plan.options.empty()) {
    return Status::InvalidArgument("empty placement plan");
  }
  ISPHERE_ASSIGN_OR_RETURN(PlacementOption best, plan.best());
  if (best.system == kTeradataSystemName) {
    // Local execution: the analytic estimate stands in for the elapsed
    // time (the master engine is not simulated at task granularity).
    return local_model_.EstimateSeconds(plan.op);
  }
  ISPHERE_ASSIGN_OR_RETURN(remote::RemoteSystem * sys,
                           GetSystem(best.system));
  ISPHERE_ASSIGN_OR_RETURN(remote::QueryResult result,
                           sys->Execute(plan.op));
  // Logging phase: feed the observation back into the costing profile.
  ISPHERE_RETURN_NOT_OK(
      estimator_.LogActual(best.system, plan.op, result.elapsed_seconds));
  return result.elapsed_seconds;
}

}  // namespace intellisphere::fed
