#include "federation/intellisphere.h"

#include <algorithm>
#include <set>

namespace intellisphere::fed {

namespace {

constexpr int64_t kKeyBytes = 4;       // a1 width
constexpr int64_t kAggregateBytes = 8;  // one SUM() output

}  // namespace

Status IntelliSphere::RegisterRemoteSystem(
    std::unique_ptr<remote::RemoteSystem> system, core::CostingProfile profile,
    ConnectorParams connector) {
  if (system == nullptr) return Status::InvalidArgument("null remote system");
  std::string name = system->name();
  if (name == kTeradataSystemName) {
    return Status::InvalidArgument(
        "'teradata' is reserved for the master engine");
  }
  if (systems_.count(name)) {
    return Status::AlreadyExists("remote system '" + name + "'");
  }
  ISPHERE_RETURN_NOT_OK(estimator_.RegisterSystem(name, std::move(profile)));
  ISPHERE_RETURN_NOT_OK(grid_.RegisterConnector(name, connector));
  systems_.emplace(std::move(name), std::move(system));
  return Status::OK();
}

Status IntelliSphere::RegisterTable(rel::TableDef def) {
  if (def.location != kTeradataSystemName && !systems_.count(def.location)) {
    return Status::InvalidArgument("table '" + def.name +
                                   "' placed on unregistered system '" +
                                   def.location + "'");
  }
  return catalog_.Add(std::move(def));
}

Result<rel::TableDef> IntelliSphere::GetTable(const std::string& name) const {
  return catalog_.Get(name);
}

Result<remote::RemoteSystem*> IntelliSphere::GetSystem(
    const std::string& name) const {
  auto it = systems_.find(name);
  if (it == systems_.end()) {
    return Status::NotFound("remote system '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> IntelliSphere::SystemNames() const {
  std::vector<std::string> names;
  for (const auto& [name, sys] : systems_) names.push_back(name);
  return names;
}

Result<double> IntelliSphere::OperatorSeconds(const std::string& system,
                                              const rel::SqlOperator& op,
                                              double now) const {
  if (system == kTeradataSystemName) {
    return local_model_.EstimateSeconds(op);
  }
  ISPHERE_ASSIGN_OR_RETURN(core::HybridEstimate est,
                           estimator_.Estimate(system, op, now));
  return est.seconds;
}

Result<PlacementPlan> IntelliSphere::PlanJoin(const std::string& left_table,
                                              const std::string& right_table,
                                              int64_t left_projected_bytes,
                                              int64_t right_projected_bytes,
                                              double extra_selectivity,
                                              double now) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef l, catalog_.Get(left_table));
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef r, catalog_.Get(right_table));
  // Orient so the right side of the operator is the smaller relation
  // (engine planners and formulas assume S is the build/broadcast side).
  if (l.stats.num_rows < r.stats.num_rows) {
    std::swap(l, r);
    std::swap(left_projected_bytes, right_projected_bytes);
  }
  ISPHERE_ASSIGN_OR_RETURN(
      int64_t out_rows,
      rel::EstimateJoinCardinality(l, r, "a1", extra_selectivity));

  rel::JoinQuery q;
  q.left = {l.stats.num_rows, l.stats.row_bytes};
  q.right = {r.stats.num_rows, r.stats.row_bytes};
  q.left_projected_bytes = left_projected_bytes;
  q.right_projected_bytes = right_projected_bytes;
  q.output_rows = out_rows;
  rel::SqlOperator op = rel::SqlOperator::MakeJoin(q);
  ISPHERE_RETURN_NOT_OK(op.Validate());

  // Candidate hosts: every system owning an input, plus Teradata
  // (Section 2, "Query Plans").
  std::set<std::string> hosts = {std::string(kTeradataSystemName),
                                 l.location, r.location};
  PlacementPlan plan;
  plan.op = op;
  for (const std::string& host : hosts) {
    PlacementOption option;
    option.system = host;
    // Inputs not already on the host are relayed through Teradata.
    if (l.location != host) {
      ISPHERE_ASSIGN_OR_RETURN(
          double t, grid_.RelaySeconds(l.location, host, l.stats.num_rows,
                                       l.stats.row_bytes));
      option.transfer_seconds += t;
    }
    if (r.location != host) {
      ISPHERE_ASSIGN_OR_RETURN(
          double t, grid_.RelaySeconds(r.location, host, r.stats.num_rows,
                                       r.stats.row_bytes));
      option.transfer_seconds += t;
    }
    auto op_cost = OperatorSeconds(host, op, now);
    if (!op_cost.ok()) {
      // A host that cannot run the operator (Unsupported / no applicable
      // algorithm) is simply not a candidate.
      if (op_cost.status().code() == StatusCode::kUnsupported ||
          op_cost.status().code() == StatusCode::kFailedPrecondition) {
        continue;
      }
      return op_cost.status();
    }
    option.operator_seconds = op_cost.value();
    plan.options.push_back(option);
  }
  if (plan.options.empty()) {
    return Status::FailedPrecondition("no system can execute this join");
  }
  std::sort(plan.options.begin(), plan.options.end(),
            [](const PlacementOption& a, const PlacementOption& b) {
              return a.total_seconds() < b.total_seconds();
            });
  return plan;
}

Result<PlacementPlan> IntelliSphere::PlanAgg(const std::string& table,
                                             const std::string& group_column,
                                             int num_aggregates,
                                             double now) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef t, catalog_.Get(table));
  ISPHERE_ASSIGN_OR_RETURN(int64_t groups,
                           rel::EstimateGroupCardinality(t, group_column));
  rel::AggQuery q;
  q.input = {t.stats.num_rows, t.stats.row_bytes};
  q.output_rows = groups;
  q.output_row_bytes = kKeyBytes + kAggregateBytes * num_aggregates;
  q.num_aggregates = num_aggregates;
  rel::SqlOperator op = rel::SqlOperator::MakeAgg(q);
  ISPHERE_RETURN_NOT_OK(op.Validate());

  std::set<std::string> hosts = {std::string(kTeradataSystemName),
                                 t.location};
  PlacementPlan plan;
  plan.op = op;
  for (const std::string& host : hosts) {
    PlacementOption option;
    option.system = host;
    if (t.location != host) {
      ISPHERE_ASSIGN_OR_RETURN(
          double tr, grid_.RelaySeconds(t.location, host, t.stats.num_rows,
                                        t.stats.row_bytes));
      option.transfer_seconds += tr;
    }
    auto op_cost = OperatorSeconds(host, op, now);
    if (!op_cost.ok()) {
      if (op_cost.status().code() == StatusCode::kUnsupported ||
          op_cost.status().code() == StatusCode::kFailedPrecondition) {
        continue;
      }
      return op_cost.status();
    }
    option.operator_seconds = op_cost.value();
    plan.options.push_back(option);
  }
  if (plan.options.empty()) {
    return Status::FailedPrecondition("no system can execute this aggregation");
  }
  std::sort(plan.options.begin(), plan.options.end(),
            [](const PlacementOption& a, const PlacementOption& b) {
              return a.total_seconds() < b.total_seconds();
            });
  return plan;
}

Result<PlacementPlan> IntelliSphere::PlanScan(const std::string& table,
                                              double selectivity,
                                              int64_t projected_bytes,
                                              double now) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef t, catalog_.Get(table));
  ISPHERE_ASSIGN_OR_RETURN(int64_t out_rows,
                           rel::EstimateFilterCardinality(t, selectivity));
  rel::ScanQuery q;
  q.input = {t.stats.num_rows, t.stats.row_bytes};
  q.selectivity = selectivity;
  q.projected_bytes = projected_bytes;
  q.output_rows = out_rows;
  rel::SqlOperator op = rel::SqlOperator::MakeScan(q);
  ISPHERE_RETURN_NOT_OK(op.Validate());

  std::set<std::string> hosts = {std::string(kTeradataSystemName),
                                 t.location};
  PlacementPlan plan;
  plan.op = op;
  for (const std::string& host : hosts) {
    PlacementOption option;
    option.system = host;
    if (t.location != host) {
      // QueryGrid evaluates simple predicates on the fly: only survivors
      // travel, already projected.
      ISPHERE_ASSIGN_OR_RETURN(
          double tr,
          grid_.RelaySeconds(t.location, host, out_rows, projected_bytes));
      option.transfer_seconds += tr;
    }
    auto op_cost = OperatorSeconds(host, op, now);
    if (!op_cost.ok()) {
      if (op_cost.status().code() == StatusCode::kUnsupported ||
          op_cost.status().code() == StatusCode::kFailedPrecondition) {
        continue;
      }
      return op_cost.status();
    }
    option.operator_seconds = op_cost.value();
    plan.options.push_back(option);
  }
  if (plan.options.empty()) {
    return Status::FailedPrecondition("no system can execute this scan");
  }
  std::sort(plan.options.begin(), plan.options.end(),
            [](const PlacementOption& a, const PlacementOption& b) {
              return a.total_seconds() < b.total_seconds();
            });
  return plan;
}

Result<PipelinePlan> IntelliSphere::PlanJoinThenAgg(
    const std::string& left_table, const std::string& right_table,
    int64_t left_projected_bytes, int64_t right_projected_bytes,
    double extra_selectivity, const std::string& group_column,
    int num_aggregates, double now) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef l, catalog_.Get(left_table));
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef r, catalog_.Get(right_table));
  if (l.stats.num_rows < r.stats.num_rows) {
    std::swap(l, r);
    std::swap(left_projected_bytes, right_projected_bytes);
  }
  ISPHERE_ASSIGN_OR_RETURN(
      int64_t join_out,
      rel::EstimateJoinCardinality(l, r, "a1", extra_selectivity));

  rel::JoinQuery jq;
  jq.left = {l.stats.num_rows, l.stats.row_bytes};
  jq.right = {r.stats.num_rows, r.stats.row_bytes};
  jq.left_projected_bytes = left_projected_bytes;
  jq.right_projected_bytes = right_projected_bytes;
  jq.output_rows = join_out;
  rel::SqlOperator join_op = rel::SqlOperator::MakeJoin(jq);
  ISPHERE_RETURN_NOT_OK(join_op.Validate());

  // Group cardinality over the join result: the group column's distinct
  // count (from the owning base table), capped by the join cardinality.
  int64_t groups =
      std::min(join_out, l.stats.DistinctOr(group_column, join_out));
  rel::AggQuery aq;
  aq.input = {join_out, jq.OutputRowBytes()};
  aq.output_rows = std::max<int64_t>(1, groups);
  aq.output_row_bytes = kKeyBytes + kAggregateBytes * num_aggregates;
  aq.num_aggregates = num_aggregates;
  rel::SqlOperator agg_op = rel::SqlOperator::MakeAgg(aq);
  ISPHERE_RETURN_NOT_OK(agg_op.Validate());

  std::set<std::string> join_hosts = {std::string(kTeradataSystemName),
                                      l.location, r.location};
  PipelinePlan plan;
  plan.join_op = join_op;
  plan.agg_op = agg_op;
  for (const std::string& jh : join_hosts) {
    auto join_cost = OperatorSeconds(jh, join_op, now);
    if (!join_cost.ok()) {
      if (join_cost.status().code() == StatusCode::kUnsupported ||
          join_cost.status().code() == StatusCode::kFailedPrecondition) {
        continue;
      }
      return join_cost.status();
    }
    double input_transfer = 0.0;
    if (l.location != jh) {
      ISPHERE_ASSIGN_OR_RETURN(
          double t, grid_.RelaySeconds(l.location, jh, l.stats.num_rows,
                                       l.stats.row_bytes));
      input_transfer += t;
    }
    if (r.location != jh) {
      ISPHERE_ASSIGN_OR_RETURN(
          double t, grid_.RelaySeconds(r.location, jh, r.stats.num_rows,
                                       r.stats.row_bytes));
      input_transfer += t;
    }
    // The aggregation runs where the intermediate lies, or on Teradata.
    std::set<std::string> agg_hosts = {jh,
                                       std::string(kTeradataSystemName)};
    for (const std::string& ah : agg_hosts) {
      auto agg_cost = OperatorSeconds(ah, agg_op, now);
      if (!agg_cost.ok()) {
        if (agg_cost.status().code() == StatusCode::kUnsupported ||
            agg_cost.status().code() == StatusCode::kFailedPrecondition) {
          continue;
        }
        return agg_cost.status();
      }
      PipelinePlacement p;
      p.join_system = jh;
      p.agg_system = ah;
      p.input_transfer_seconds = input_transfer;
      p.join_seconds = join_cost.value();
      p.agg_seconds = agg_cost.value();
      if (ah != jh) {
        ISPHERE_ASSIGN_OR_RETURN(
            p.interm_transfer_seconds,
            grid_.RelaySeconds(jh, ah, join_out, jq.OutputRowBytes()));
      }
      if (ah != kTeradataSystemName) {
        ISPHERE_ASSIGN_OR_RETURN(
            p.result_transfer_seconds,
            grid_.RelaySeconds(ah, kTeradataSystemName, aq.output_rows,
                               aq.output_row_bytes));
      }
      plan.options.push_back(p);
    }
  }
  if (plan.options.empty()) {
    return Status::FailedPrecondition("no placement can run this pipeline");
  }
  std::sort(plan.options.begin(), plan.options.end(),
            [](const PipelinePlacement& a, const PipelinePlacement& b) {
              return a.total_seconds() < b.total_seconds();
            });
  return plan;
}

Result<double> IntelliSphere::ExecuteBest(const PlacementPlan& plan) {
  if (plan.options.empty()) {
    return Status::InvalidArgument("empty placement plan");
  }
  const PlacementOption& best = plan.best();
  if (best.system == kTeradataSystemName) {
    // Local execution: the analytic estimate stands in for the elapsed
    // time (the master engine is not simulated at task granularity).
    return local_model_.EstimateSeconds(plan.op);
  }
  ISPHERE_ASSIGN_OR_RETURN(remote::RemoteSystem * sys,
                           GetSystem(best.system));
  ISPHERE_ASSIGN_OR_RETURN(remote::QueryResult result,
                           sys->Execute(plan.op));
  // Logging phase: feed the observation back into the costing profile.
  ISPHERE_RETURN_NOT_OK(
      estimator_.LogActual(best.system, plan.op, result.elapsed_seconds));
  return result.elapsed_seconds;
}

}  // namespace intellisphere::fed
