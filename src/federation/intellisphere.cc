#include "federation/intellisphere.h"

#include <map>
#include <set>
#include <utility>

namespace intellisphere::fed {

namespace {

/// Maps a costed root/subtree node back to the legacy PlacementOption
/// shape (field-for-field; the wrappers' bit-parity contract).
PlacementOption OptionFromNode(const QueryPlanNode& node) {
  PlacementOption option;
  option.system = node.system;
  option.transfer_seconds = node.transfer_seconds;
  option.operator_seconds = node.operator_seconds;
  option.approach = node.approach;
  option.algorithm = node.algorithm;
  option.algorithm_candidates = node.algorithm_candidates;
  option.eliminated_algorithms = node.eliminated_algorithms;
  option.used_remedy = node.used_remedy;
  option.remedy_alpha = node.remedy_alpha;
  option.fell_back_reason = node.fell_back_reason;
  return option;
}

/// Maps a single-operator QueryPlan back to the legacy PlacementPlan:
/// candidates (already cheapest-first) become options, eliminated hosts
/// keep their search order, and the search's "no placement" error is
/// rewritten to the planner's historical message.
Result<PlacementPlan> SingleOperatorPlanFrom(Result<QueryPlan> plan,
                                             const char* no_host_message) {
  if (!plan.ok()) {
    if (plan.status().code() == StatusCode::kFailedPrecondition) {
      return Status::FailedPrecondition(no_host_message);
    }
    return plan.status();
  }
  const QueryPlan& qp = plan.value();
  PlacementPlan out;
  out.op = qp.nodes[static_cast<size_t>(qp.candidates.front().root)].op;
  for (const QueryPlanCandidate& c : qp.candidates) {
    out.options.push_back(
        OptionFromNode(qp.nodes[static_cast<size_t>(c.root)]));
  }
  for (const PrunedSubplan& p : qp.pruned) {
    if (p.kind != PrunedSubplan::Kind::kEliminated) continue;
    out.eliminated.push_back({p.system, p.reason});
  }
  return out;
}

}  // namespace

Result<PlacementOption> PlacementPlan::best() const {
  if (options.empty()) {
    return Status::FailedPrecondition("placement plan has no options");
  }
  return options.front();
}

Result<PipelinePlacement> PipelinePlan::best() const {
  if (options.empty()) {
    return Status::FailedPrecondition("pipeline plan has no options");
  }
  return options.front();
}

Status IntelliSphere::RegisterRemoteSystem(
    std::unique_ptr<remote::RemoteSystem> system, core::CostingProfile profile,
    ConnectorParams connector) {
  if (system == nullptr) return Status::InvalidArgument("null remote system");
  std::string name = system->name();
  if (name == kTeradataSystemName) {
    return Status::InvalidArgument(
        "'teradata' is reserved for the master engine");
  }
  if (systems_.count(name)) {
    return Status::AlreadyExists("remote system '" + name + "'");
  }
  ISPHERE_RETURN_NOT_OK(estimator_.RegisterSystem(name, std::move(profile)));
  ISPHERE_RETURN_NOT_OK(grid_.RegisterConnector(name, connector));
  systems_.emplace(std::move(name), std::move(system));
  return Status::OK();
}

Status IntelliSphere::RegisterTable(rel::TableDef def) {
  if (def.location != kTeradataSystemName && !systems_.count(def.location)) {
    return Status::InvalidArgument("table '" + def.name +
                                   "' placed on unregistered system '" +
                                   def.location + "'");
  }
  return catalog_.Add(std::move(def));
}

Result<rel::TableDef> IntelliSphere::GetTable(const std::string& name) const {
  return catalog_.Get(name);
}

Result<remote::RemoteSystem*> IntelliSphere::GetSystem(
    const std::string& name) const {
  auto it = systems_.find(name);
  if (it == systems_.end()) {
    return Status::NotFound("remote system '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> IntelliSphere::SystemNames() const {
  std::vector<std::string> names;
  for (const auto& [name, sys] : systems_) names.push_back(name);
  return names;
}

Status IntelliSphere::AttachEstimationService(
    const serving::EstimationService* service) {
  if (service != nullptr && service->estimator() != &estimator_) {
    return Status::InvalidArgument(
        "estimation service wraps a different CostEstimator than this "
        "facade's");
  }
  if (admission_ != nullptr && admission_->service() != service) {
    return Status::FailedPrecondition(
        "an admission controller wrapping the current service is attached; "
        "detach it before swapping the estimation service");
  }
  serving_ = service;
  return Status::OK();
}

Status IntelliSphere::AttachAdmissionController(
    const serving::AdmissionController* admission) {
  if (admission != nullptr && admission->service() != serving_) {
    return Status::InvalidArgument(
        "admission controller wraps a different EstimationService than the "
        "one attached to this facade");
  }
  admission_ = admission;
  return Status::OK();
}

std::vector<Result<core::HybridEstimate>> IntelliSphere::CostBatch(
    const std::vector<PlanCostRequest>& requests,
    const core::EstimateContext& ctx) const {
  std::vector<Result<core::HybridEstimate>> out(
      requests.size(),
      Result<core::HybridEstimate>(Status::Internal("request not costed")));
  // Master-engine requests never leave the process: the analytic local
  // model is evaluated inline (it is not cacheable state, and the serving
  // layer deliberately wraps only remote profiles).
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].system != kTeradataSystemName) continue;
    auto seconds = local_model_.EstimateSeconds(requests[i].op);
    if (seconds.ok()) {
      core::HybridEstimate est;
      est.seconds = seconds.value();
      out[i] = std::move(est);
    } else {
      out[i] = seconds.status();
    }
  }

  if (serving_ != nullptr) {
    std::vector<serving::EstimateRequest> remote;
    std::vector<size_t> positions;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].system == kTeradataSystemName) continue;
      serving::EstimateRequest request;
      request.system = requests[i].system;
      request.op = requests[i].op;
      request.now = ctx.now;
      request.policy_override = ctx.policy_override;
      remote.push_back(std::move(request));
      positions.push_back(i);
    }
    if (!remote.empty()) {
      // With an admission controller attached, the remote batch passes its
      // serve / serve-degraded / shed ladder first; shed batches surface
      // as per-request ResourceExhausted / DeadlineExceeded, which aborts
      // the plan search (BatchCostFn contract) — planning fails fast under
      // overload instead of queueing behind the pool.
      std::vector<Result<core::HybridEstimate>> results =
          admission_ != nullptr ? admission_->EstimateBatch(remote, ctx)
                                : serving_->EstimateBatch(remote, ctx);
      for (size_t j = 0; j < positions.size() && j < results.size(); ++j) {
        out[positions[j]] = std::move(results[j]);
      }
    }
    return out;
  }

  // No serving layer: group per system and lower each group through
  // CostEstimator::EstimateBatch (bit-identical to the scalar path).
  std::map<std::string, std::vector<size_t>> by_system;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].system == kTeradataSystemName) continue;
    by_system[requests[i].system].push_back(i);
  }
  for (const auto& [system, positions] : by_system) {
    std::vector<const rel::SqlOperator*> ops;
    std::vector<const core::EstimateContext*> ctxs;
    ops.reserve(positions.size());
    ctxs.reserve(positions.size());
    for (size_t i : positions) {
      ops.push_back(&requests[i].op);
      ctxs.push_back(&ctx);
    }
    std::vector<Result<core::HybridEstimate>> results;
    Status batch = estimator_.EstimateBatch(system, ops, ctxs, &results);
    if (!batch.ok()) {
      for (size_t i : positions) out[i] = batch;
      continue;
    }
    for (size_t j = 0; j < positions.size() && j < results.size(); ++j) {
      out[positions[j]] = std::move(results[j]);
    }
  }
  return out;
}

Result<QueryPlan> IntelliSphere::PlanQuery(const QuerySpec& spec,
                                           const core::EstimateContext& ctx,
                                           const PlannerOptions& options) const {
  PlanSearchInput input;
  input.spec = &spec;
  input.tables.reserve(spec.relations.size());
  for (const QuerySpec::Relation& r : spec.relations) {
    ISPHERE_ASSIGN_OR_RETURN(rel::TableDef def, catalog_.Get(r.table));
    input.tables.push_back(std::move(def));
  }
  input.master = kTeradataSystemName;
  input.cost = [this](const std::vector<PlanCostRequest>& requests,
                      const core::EstimateContext& bctx) {
    return CostBatch(requests, bctx);
  };
  input.transfer = [this](const std::string& from, const std::string& to,
                          int64_t rows, int64_t row_bytes) {
    return grid_.RelaySeconds(from, to, rows, row_bytes);
  };
  return SearchPlan(input, options, ctx);
}

Result<PlacementPlan> IntelliSphere::PlanJoin(
    const std::string& left_table, const std::string& right_table,
    int64_t left_projected_bytes, int64_t right_projected_bytes,
    double extra_selectivity, const core::EstimateContext& ctx) const {
  // Reproduce the pre-PlanQuery argument checks (and their error order):
  // table resolution, then the cardinality-model and descriptor rules.
  ISPHERE_RETURN_NOT_OK(catalog_.Get(left_table).status());
  ISPHERE_RETURN_NOT_OK(catalog_.Get(right_table).status());
  if (extra_selectivity <= 0.0 || extra_selectivity > 1.0) {
    return Status::InvalidArgument("extra_selectivity must be in (0, 1]");
  }
  if (left_projected_bytes < 0 || right_projected_bytes < 0) {
    return Status::InvalidArgument("negative projected size");
  }
  if (left_projected_bytes + right_projected_bytes <= 0) {
    return Status::InvalidArgument("join must project at least one byte");
  }
  QuerySpec spec;
  spec.relations.resize(2);
  spec.relations[0].table = left_table;
  spec.relations[0].projected_bytes = left_projected_bytes;
  spec.relations[1].table = right_table;
  spec.relations[1].projected_bytes = right_projected_bytes;
  QuerySpec::JoinPredicate predicate;
  predicate.left = 0;
  predicate.right = 1;
  predicate.column = "a1";
  predicate.extra_selectivity = extra_selectivity;
  spec.joins.push_back(predicate);
  return SingleOperatorPlanFrom(PlanQuery(spec, ctx),
                                "no system can execute this join");
}

Result<PlacementPlan> IntelliSphere::PlanAgg(
    const std::string& table, const std::string& group_column,
    int num_aggregates, const core::EstimateContext& ctx) const {
  QuerySpec spec;
  spec.relations.resize(1);
  spec.relations[0].table = table;
  QuerySpec::Aggregate aggregate;
  aggregate.relation = 0;
  aggregate.group_column = group_column;
  aggregate.num_aggregates = num_aggregates;
  spec.aggregate = aggregate;
  return SingleOperatorPlanFrom(PlanQuery(spec, ctx),
                                "no system can execute this aggregation");
}

Result<PlacementPlan> IntelliSphere::PlanScan(
    const std::string& table, double selectivity, int64_t projected_bytes,
    const core::EstimateContext& ctx) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef t, catalog_.Get(table));
  if (selectivity < 0.0 || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in [0, 1]");
  }
  if (projected_bytes <= 0 || projected_bytes > t.stats.row_bytes) {
    return Status::InvalidArgument(
        "projected bytes must be in [1, input row size]");
  }
  QuerySpec spec;
  spec.relations.resize(1);
  spec.relations[0].table = table;
  spec.relations[0].filter_selectivity = selectivity;
  spec.relations[0].projected_bytes = projected_bytes;
  return SingleOperatorPlanFrom(PlanQuery(spec, ctx),
                                "no system can execute this scan");
}

Result<PipelinePlan> IntelliSphere::PlanJoinThenAgg(
    const std::string& left_table, const std::string& right_table,
    int64_t left_projected_bytes, int64_t right_projected_bytes,
    double extra_selectivity, const std::string& group_column,
    int num_aggregates, const core::EstimateContext& ctx) const {
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef l, catalog_.Get(left_table));
  ISPHERE_ASSIGN_OR_RETURN(rel::TableDef r, catalog_.Get(right_table));
  if (extra_selectivity <= 0.0 || extra_selectivity > 1.0) {
    return Status::InvalidArgument("extra_selectivity must be in (0, 1]");
  }
  if (left_projected_bytes < 0 || right_projected_bytes < 0) {
    return Status::InvalidArgument("negative projected size");
  }
  if (left_projected_bytes + right_projected_bytes <= 0) {
    return Status::InvalidArgument("join must project at least one byte");
  }
  QuerySpec spec;
  spec.relations.resize(2);
  spec.relations[0].table = left_table;
  spec.relations[0].projected_bytes = left_projected_bytes;
  spec.relations[1].table = right_table;
  spec.relations[1].projected_bytes = right_projected_bytes;
  QuerySpec::JoinPredicate predicate;
  predicate.left = 0;
  predicate.right = 1;
  predicate.column = "a1";
  predicate.extra_selectivity = extra_selectivity;
  spec.joins.push_back(predicate);
  QuerySpec::Aggregate aggregate;
  // The legacy planner resolved the group column against the larger input
  // (its post-swap `l`); ties keep the call's left table.
  aggregate.relation = l.stats.num_rows < r.stats.num_rows ? 1 : 0;
  aggregate.group_column = group_column;
  aggregate.num_aggregates = num_aggregates;
  spec.aggregate = aggregate;
  spec.result_to_master = true;

  auto plan = PlanQuery(spec, ctx);
  if (!plan.ok()) {
    if (plan.status().code() == StatusCode::kFailedPrecondition) {
      return Status::FailedPrecondition("no placement can run this pipeline");
    }
    return plan.status();
  }
  const QueryPlan& qp = plan.value();
  PipelinePlan out;
  {
    const QueryPlanNode& agg_node =
        qp.nodes[static_cast<size_t>(qp.candidates.front().root)];
    const QueryPlanNode& join_node =
        qp.nodes[static_cast<size_t>(agg_node.children.front())];
    out.join_op = join_node.op;
    out.agg_op = agg_node.op;
  }
  for (const QueryPlanCandidate& c : qp.candidates) {
    const QueryPlanNode& agg_node = qp.nodes[static_cast<size_t>(c.root)];
    const QueryPlanNode& join_node =
        qp.nodes[static_cast<size_t>(agg_node.children.front())];
    PipelinePlacement p;
    p.join_system = join_node.system;
    p.agg_system = agg_node.system;
    p.input_transfer_seconds = join_node.transfer_seconds;
    p.join_seconds = join_node.operator_seconds;
    p.interm_transfer_seconds = agg_node.transfer_seconds;
    p.agg_seconds = agg_node.operator_seconds;
    p.result_transfer_seconds = c.result_transfer_seconds;
    p.join_approach = join_node.approach;
    p.join_algorithm = join_node.algorithm;
    p.agg_approach = agg_node.approach;
    p.agg_algorithm = agg_node.algorithm;
    out.options.push_back(std::move(p));
  }
  // Rebuild the legacy interleaving: per join host (sorted), its join
  // elimination, then the aggregation eliminations of placements routed
  // via it.
  std::set<std::string> join_hosts = {std::string(kTeradataSystemName),
                                      l.location, r.location};
  for (const std::string& jh : join_hosts) {
    for (const PrunedSubplan& p : qp.pruned) {
      if (p.kind != PrunedSubplan::Kind::kEliminated) continue;
      if (p.stage != QueryPlanNode::Kind::kJoin || p.system != jh) continue;
      out.eliminated.push_back({jh, "join: " + p.reason});
    }
    for (const PrunedSubplan& p : qp.pruned) {
      if (p.kind != PrunedSubplan::Kind::kEliminated) continue;
      if (p.stage != QueryPlanNode::Kind::kAggregate || p.via_system != jh) {
        continue;
      }
      out.eliminated.push_back(
          {p.system, "aggregation after join on " + jh + ": " + p.reason});
    }
  }
  return out;
}

Result<double> IntelliSphere::ExecuteBest(const PlacementPlan& plan) {
  if (plan.options.empty()) {
    return Status::InvalidArgument("empty placement plan");
  }
  ISPHERE_ASSIGN_OR_RETURN(PlacementOption best, plan.best());
  if (best.system == kTeradataSystemName) {
    // Local execution: the analytic estimate stands in for the elapsed
    // time (the master engine is not simulated at task granularity).
    return local_model_.EstimateSeconds(plan.op);
  }
  ISPHERE_ASSIGN_OR_RETURN(remote::RemoteSystem * sys,
                           GetSystem(best.system));
  ISPHERE_ASSIGN_OR_RETURN(remote::QueryResult result,
                           sys->Execute(plan.op));
  // Logging phase: feed the observation back into the costing profile.
  ISPHERE_RETURN_NOT_OK(
      estimator_.LogActual(best.system, plan.op, result.elapsed_seconds));
  return result.elapsed_seconds;
}

}  // namespace intellisphere::fed
