// Per-column statistics and selectivity estimation for the cross-engine
// plan search (DESIGN.md §15). The DP enumerator needs cardinalities for
// arbitrary relation subsets, so the single-operator formulas in
// relational/cardinality.h are generalized here to composable pieces:
// per-column min/max/distinct profiles derived from the catalog, optional
// equi-width histograms for range predicates (with a uniform min/max
// fallback when no histogram is present), and the containment-assumption
// equi-join selectivity 1 / max(d_l, d_r).
//
// Numeric contract: for a two-relation equi-join, JoinOutputRows composed
// with base-table profiles is bit-identical to
// rel::EstimateJoinCardinality — same operand order, same llround, same
// max(1, ...) clamp — which is what lets the legacy planners become thin
// wrappers over PlanQuery without changing a single golden number.

#ifndef INTELLISPHERE_FEDERATION_STATS_H_
#define INTELLISPHERE_FEDERATION_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "relational/catalog.h"
#include "util/status.h"

namespace intellisphere::fed {

/// Statistics for one column: distinct count plus an optional value range
/// and an optional equi-width histogram over that range.
struct ColumnStats {
  /// Number of distinct values (<= 0 means unknown).
  int64_t distinct = 0;
  /// Value range [min, max]; meaningful only when has_range is true.
  double min = 0.0;
  double max = 0.0;
  bool has_range = false;
  /// Equi-width bucket row counts over [min, max]; empty = no histogram
  /// (range selectivity then assumes a uniform distribution).
  std::vector<double> histogram;
};

/// Row count, row width, and per-column statistics for one relation (a base
/// table or an intermediate result).
struct TableProfile {
  int64_t rows = 0;
  int64_t row_bytes = 0;
  std::map<std::string, ColumnStats> columns;

  /// The column's distinct count, or `fallback` when the column is unknown
  /// or its distinct count is unknown — the same convention as
  /// rel::TableStats::DistinctOr.
  int64_t DistinctOr(const std::string& column, int64_t fallback) const;
};

/// Derives a profile from a catalog table: rows/row_bytes from its stats,
/// one ColumnStats per known distinct count. Synthetic catalog columns get
/// a dense integer range [0, distinct - 1] so range predicates can be
/// estimated without a histogram.
TableProfile ProfileFromTable(const rel::TableDef& def);

/// Selectivity of `column = constant` under uniformity: 1 / distinct.
/// InvalidArgument when the distinct count is not positive.
[[nodiscard]] Result<double> EstimateEqualitySelectivity(
    const ColumnStats& column);

/// Selectivity of `lo <= column <= hi`: histogram buckets when present
/// (partial buckets pro-rated), otherwise uniform interpolation over
/// [min, max]. The predicate range is clipped to the column range first.
/// FailedPrecondition when the column has no range information at all;
/// InvalidArgument when lo > hi.
[[nodiscard]] Result<double> EstimateRangeSelectivity(const ColumnStats& column,
                                                      double lo, double hi);

/// Containment-assumption equi-join selectivity: 1 / max(d_l, d_r).
/// InvalidArgument when either distinct count is not positive.
[[nodiscard]] Result<double> EstimateEquiJoinSelectivity(int64_t left_distinct,
                                                         int64_t right_distinct);

/// Equi-join output cardinality with an extra predicate selectivity —
/// the subset-level generalization of rel::EstimateJoinCardinality, and
/// bit-identical to it for base-table inputs:
///   max(1, llround(l_rows * r_rows / max(d_l, d_r) * extra)).
/// InvalidArgument when extra is outside (0, 1] or a distinct count is not
/// positive.
[[nodiscard]] Result<int64_t> JoinOutputRows(int64_t left_rows,
                                             int64_t right_rows,
                                             int64_t left_distinct,
                                             int64_t right_distinct,
                                             double extra_selectivity);

/// Distinct count of a column after an operator reduced the relation to
/// `output_rows` rows: a distinct count can never exceed the row count.
int64_t DistinctAfter(int64_t distinct, int64_t output_rows);

}  // namespace intellisphere::fed

#endif  // INTELLISPHERE_FEDERATION_STATS_H_
