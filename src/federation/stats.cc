#include "federation/stats.h"

#include <algorithm>
#include <cmath>

namespace intellisphere::fed {

int64_t TableProfile::DistinctOr(const std::string& column,
                                 int64_t fallback) const {
  auto it = columns.find(column);
  if (it == columns.end() || it->second.distinct <= 0) return fallback;
  return it->second.distinct;
}

TableProfile ProfileFromTable(const rel::TableDef& def) {
  TableProfile profile;
  profile.rows = def.stats.num_rows;
  profile.row_bytes = def.stats.row_bytes;
  for (const auto& [column, distinct] : def.stats.column_distinct) {
    ColumnStats stats;
    stats.distinct = distinct;
    if (distinct > 0) {
      // Synthetic catalog columns hold `row / f`, a dense integer domain.
      stats.min = 0.0;
      stats.max = static_cast<double>(distinct - 1);
      stats.has_range = true;
    }
    profile.columns.emplace(column, std::move(stats));
  }
  return profile;
}

Result<double> EstimateEqualitySelectivity(const ColumnStats& column) {
  if (column.distinct <= 0) {
    return Status::InvalidArgument("non-positive distinct count");
  }
  return 1.0 / static_cast<double>(column.distinct);
}

Result<double> EstimateRangeSelectivity(const ColumnStats& column, double lo,
                                        double hi) {
  if (lo > hi) return Status::InvalidArgument("range lower bound above upper");
  if (!column.has_range) {
    return Status::FailedPrecondition("column has no range statistics");
  }
  // Clip the predicate to the column's value range; an empty intersection
  // selects nothing.
  double clipped_lo = std::max(lo, column.min);
  double clipped_hi = std::min(hi, column.max);
  if (clipped_lo > clipped_hi) return 0.0;

  if (!column.histogram.empty()) {
    double total = 0.0;
    for (double count : column.histogram) total += count;
    if (total <= 0.0) {
      return Status::FailedPrecondition("histogram holds no rows");
    }
    double width = (column.max - column.min) /
                   static_cast<double>(column.histogram.size());
    if (width <= 0.0) {
      // Degenerate single-point range: the clip above already proved the
      // predicate covers it.
      return 1.0;
    }
    double selected = 0.0;
    for (size_t i = 0; i < column.histogram.size(); ++i) {
      double bucket_lo = column.min + width * static_cast<double>(i);
      double bucket_hi = bucket_lo + width;
      double overlap =
          std::min(clipped_hi, bucket_hi) - std::max(clipped_lo, bucket_lo);
      if (overlap <= 0.0) continue;
      // Pro-rate partially covered buckets by the overlap fraction.
      selected += column.histogram[i] * std::min(1.0, overlap / width);
    }
    return std::clamp(selected / total, 0.0, 1.0);
  }

  // Uniform fallback over [min, max].
  double span = column.max - column.min;
  if (span <= 0.0) return 1.0;
  return std::clamp((clipped_hi - clipped_lo) / span, 0.0, 1.0);
}

Result<double> EstimateEquiJoinSelectivity(int64_t left_distinct,
                                           int64_t right_distinct) {
  if (left_distinct <= 0 || right_distinct <= 0) {
    return Status::InvalidArgument("non-positive distinct count");
  }
  return 1.0 / static_cast<double>(std::max(left_distinct, right_distinct));
}

Result<int64_t> JoinOutputRows(int64_t left_rows, int64_t right_rows,
                               int64_t left_distinct, int64_t right_distinct,
                               double extra_selectivity) {
  if (extra_selectivity <= 0.0 || extra_selectivity > 1.0) {
    return Status::InvalidArgument("extra_selectivity must be in (0, 1]");
  }
  if (left_distinct <= 0 || right_distinct <= 0) {
    return Status::InvalidArgument("non-positive distinct count");
  }
  // Operand order matches rel::EstimateJoinCardinality exactly so the
  // legacy-planner wrappers reproduce its numbers bit-for-bit.
  double denom = static_cast<double>(std::max(left_distinct, right_distinct));
  double est = static_cast<double>(left_rows) *
               static_cast<double>(right_rows) / denom * extra_selectivity;
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(est)));
}

int64_t DistinctAfter(int64_t distinct, int64_t output_rows) {
  return std::min(distinct, output_rows);
}

}  // namespace intellisphere::fed
