// Cross-engine dynamic-programming plan search (DESIGN.md §15): the
// declarative QuerySpec -> QueryPlan planning API behind
// IntelliSphere::PlanQuery.
//
// The enumerator crosses join orders with per-operator placement: the DP
// table is keyed by (relation-subset bitmask, execution site), each entry
// holding the cheapest way to materialize that subset's join result on
// that site. Subsets are combined bottom-up (bushy trees included), and
// every candidate of a DP level is costed through ONE batched-costing
// callback, so the serving layer's dedup/cache and the batched-GEMM path
// absorb the candidate explosion (DESIGN.md §14).
//
// Cost model parity: on two-relation specs the search reproduces the
// legacy PlanJoin/PlanAgg/PlanScan/PlanJoinThenAgg planners bit for bit —
// same operator descriptors, same floating-point accumulation order, same
// host iteration and sort — which is what lets those planners be thin
// wrappers over PlanQuery (pinned by the wrapper-parity regression tests).

#ifndef INTELLISPHERE_FEDERATION_PLAN_SEARCH_H_
#define INTELLISPHERE_FEDERATION_PLAN_SEARCH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/estimate_context.h"
#include "core/hybrid.h"
#include "federation/stats.h"
#include "relational/catalog.h"
#include "relational/query.h"
#include "util/properties.h"
#include "util/status.h"

namespace intellisphere::fed {

/// Properties keys for the planner knobs (documented in docs/CONFIG.md).
inline constexpr char kPlannerMaxDpRelationsKey[] = "planner.max_dp_relations";
inline constexpr char kPlannerPruneFactorKey[] = "planner.prune_factor";

/// Byte widths the planners assume for aggregate outputs: a 4-byte group
/// key (the a1 width) plus 8 bytes per SUM() column.
inline constexpr int64_t kGroupKeyBytes = 4;
inline constexpr int64_t kAggregateValueBytes = 8;

/// Sentinel for QuerySpec::Relation::projected_bytes: project the full row.
inline constexpr int64_t kFullRowWidth = -1;

/// Tuning knobs for the DP search.
struct PlannerOptions {
  /// Hard ceiling on the number of relations a spec may join (the DP table
  /// is exponential in it); exceeding it is InvalidArgument, not a silent
  /// fallback. Key: planner.max_dp_relations.
  int max_dp_relations = 12;
  /// Heuristic pruning: once a relation subset is fully enumerated, DP
  /// entries costlier than prune_factor x the subset's cheapest entry are
  /// dropped (recorded as pruned) before they spawn larger joins. 0
  /// disables pruning — the exact search the oracle tests verify. Values
  /// in (0, 1) are InvalidArgument. The final subset is never pruned, so
  /// the returned candidate list is always complete. Key:
  /// planner.prune_factor.
  double prune_factor = 0.0;

  /// Reads planner.*; absent keys keep their defaults, out-of-range values
  /// are InvalidArgument.
  [[nodiscard]] static Result<PlannerOptions> FromProperties(
      const Properties& props);
};

/// A declarative multi-relation query: base relations (with optional
/// filters and projections), equi-join predicates forming a connected join
/// graph, and an optional trailing GROUP BY aggregation.
struct QuerySpec {
  struct Relation {
    /// Catalog table name.
    std::string table;
    /// Fraction of rows surviving this relation's filter predicates. A
    /// value < 1 plans an explicit scan stage for the relation; 1.0 feeds
    /// the raw table to the join (the legacy planners' shape).
    double filter_selectivity = 1.0;
    /// Byte width this relation contributes to join projections (and the
    /// scan output width). kFullRowWidth (-1) = the full row width; values
    /// >= 0 are literal (0 is legal for a join input that projects nothing,
    /// as long as the other side projects something).
    int64_t projected_bytes = kFullRowWidth;
  };
  struct JoinPredicate {
    /// Indices into `relations`.
    int left = 0;
    int right = 1;
    /// Equi-join column; must have (or fall back to) distinct statistics
    /// on both sides.
    std::string column = "a1";
    /// Selectivity of extra non-equi predicates on this edge, in (0, 1].
    double extra_selectivity = 1.0;
  };
  struct Aggregate {
    /// The relation whose statistics resolve `group_column`.
    int relation = 0;
    std::string group_column;
    int num_aggregates = 1;
  };

  std::vector<Relation> relations;
  std::vector<JoinPredicate> joins;
  std::optional<Aggregate> aggregate;
  /// When true, candidate totals include relaying the final result back to
  /// the master engine (the paper's pipeline convention); when false, the
  /// result stays on the system that produced it (the single-operator
  /// planners' convention).
  bool result_to_master = false;

  /// Structural validation: index ranges, selectivity ranges, join-graph
  /// connectivity. Catalog existence is checked by PlanQuery. Always
  /// InvalidArgument on a bad spec — never UB.
  [[nodiscard]] Status Validate() const;
};

/// One node of a chosen (or candidate) plan tree. Nodes live in
/// QueryPlan::nodes (a flat arena; children are indices), so subtrees
/// shared between candidates are stored once.
struct QueryPlanNode {
  enum class Kind { kTable, kScan, kJoin, kAggregate };
  Kind kind = Kind::kTable;
  /// Where this node's output materializes ("teradata" or a remote name).
  std::string system;
  /// Table name for kTable/kScan nodes; empty otherwise.
  std::string label;
  /// Bitmask of the spec relations this subtree covers (bit i = relation
  /// i).
  uint64_t relation_mask = 0;
  int64_t output_rows = 0;
  int64_t output_row_bytes = 0;
  /// QueryGrid cost of staging this node's inputs onto `system`.
  double transfer_seconds = 0.0;
  /// Estimated elapsed time of this node's operator (0 for kTable).
  double operator_seconds = 0.0;
  /// Cumulative cost of the subtree: children + input transfers + operator.
  double subtree_seconds = 0.0;

  /// Costing provenance, as in PlacementOption ("local" for the master
  /// engine, the profile's approach name otherwise).
  std::string approach;
  std::string algorithm;
  std::vector<core::AlgorithmEstimate> algorithm_candidates;
  std::vector<core::EliminatedAlgorithm> eliminated_algorithms;
  bool used_remedy = false;
  double remedy_alpha = 1.0;
  std::string fell_back_reason;

  /// The operator descriptor this node was costed for (kTable nodes keep a
  /// default-constructed operator).
  rel::SqlOperator op;
  /// Child node indices into QueryPlan::nodes, left input first.
  std::vector<int> children;
};

/// A DP-table alternative the search dropped, kept for EXPLAIN: a host
/// that could not run an operator, a subplan beaten by a cheaper way to
/// build the same (subset, site) entry, or a prune_factor victim.
struct PrunedSubplan {
  enum class Kind {
    kEliminated,  ///< the engine cannot run the operator (with the reason)
    kDominated,   ///< a cheaper plan reached the same (subset, site)
    kPruned,      ///< dropped by planner.prune_factor
  };
  Kind kind = Kind::kDominated;
  /// The stage that was dropped.
  QueryPlanNode::Kind stage = QueryPlanNode::Kind::kJoin;
  uint64_t relation_mask = 0;
  /// The candidate's execution site.
  std::string system;
  /// For aggregation-stage drops: the site the join result lived on.
  std::string via_system;
  /// The candidate's cumulative cost (0 when eliminated before costing
  /// completed).
  double subtree_seconds = 0.0;
  /// Elimination reason (estimator message) or domination/pruning note.
  std::string reason;
  /// Human-readable candidate label for EXPLAIN.
  std::string description;
};

/// One completed root alternative: a full plan for the whole spec.
struct QueryPlanCandidate {
  /// Root node index into QueryPlan::nodes.
  int root = -1;
  /// Relay of the final answer to the master engine (0 unless the spec
  /// set result_to_master and the root runs remotely).
  double result_transfer_seconds = 0.0;
  /// End-to-end cost: root subtree + result transfer.
  double total_seconds = 0.0;
};

/// The DP search result: the chosen plan tree plus every completed
/// alternative (cheapest first) and the subplans the search dropped.
struct QueryPlan {
  std::vector<QueryPlanNode> nodes;
  /// All completed root candidates, sorted cheapest first; candidates[0]
  /// is the chosen plan.
  std::vector<QueryPlanCandidate> candidates;
  std::vector<PrunedSubplan> pruned;
  /// Search statistics: operator placements actually costed, DP entries
  /// surviving in the table.
  int64_t candidates_costed = 0;
  int64_t dp_entries = 0;

  /// The chosen candidate; FailedPrecondition when the plan is empty.
  [[nodiscard]] Result<QueryPlanCandidate> best() const;
  /// The chosen candidate's root node; FailedPrecondition when empty.
  [[nodiscard]] Result<const QueryPlanNode*> root() const;
};

/// One operator-placement costing request the search emits.
struct PlanCostRequest {
  std::string system;
  rel::SqlOperator op;
};

/// Batched costing callback: returns one Result per request, in request
/// order (the EstimationService::EstimateBatch contract). Per-request
/// kUnsupported/kFailedPrecondition results eliminate that placement; any
/// other error aborts the search.
using BatchCostFn = std::function<std::vector<Result<core::HybridEstimate>>(
    const std::vector<PlanCostRequest>&, const core::EstimateContext&)>;

/// Data-movement cost callback (QueryGrid::RelaySeconds shape). Never
/// called with from == to.
using TransferFn = std::function<Result<double>(
    const std::string& from, const std::string& to, int64_t rows,
    int64_t row_bytes)>;

/// Everything the search engine needs, with the environment abstracted so
/// tests can drive it directly.
struct PlanSearchInput {
  const QuerySpec* spec = nullptr;
  /// Resolved table definitions, aligned with spec->relations.
  std::vector<rel::TableDef> tables;
  /// The master engine's system name ("teradata" in the facade).
  std::string master;
  BatchCostFn cost;
  TransferFn transfer;
};

/// Runs the DP join-order x placement search. Emits a `plan.query` root
/// span with one `plan.candidate` child per costed or eliminated
/// placement, and bumps the plan.candidates_costed /
/// plan.placements_eliminated counters.
[[nodiscard]] Result<QueryPlan> SearchPlan(const PlanSearchInput& input,
                                           const PlannerOptions& options,
                                           const core::EstimateContext& ctx);

}  // namespace intellisphere::fed

#endif  // INTELLISPHERE_FEDERATION_PLAN_SEARCH_H_
