// QueryGrid (Section 2): the connector layer moving data between Teradata
// and the remote systems. The paper assumes network/transfer costs "are
// learned through some other mechanisms"; this is that mechanism — a simple
// calibrated per-connector transfer model. Data never moves directly
// between two remote systems: it always relays through Teradata.

#ifndef INTELLISPHERE_FEDERATION_QUERYGRID_H_
#define INTELLISPHERE_FEDERATION_QUERYGRID_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace intellisphere::fed {

/// Transfer characteristics of one QueryGrid connector.
struct ConnectorParams {
  double setup_seconds = 0.5;        ///< session establishment
  double per_record_us = 0.8;        ///< per-record marshalling
  double bandwidth_bytes_per_sec = 120e6;  ///< sustained link throughput
  /// Fraction of records surviving connector-side predicate pushdown
  /// (QueryGrid can evaluate simple predicates on the fly; 1 = no filter).
  double pushdown_selectivity = 1.0;
};

/// The QueryGrid connector registry and transfer-cost model.
class QueryGrid {
 public:
  /// Registers a connector between Teradata and `system_name`.
  /// AlreadyExists on duplicates.
  [[nodiscard]] Status RegisterConnector(const std::string& system_name,
                                         ConnectorParams params);
  bool HasConnector(const std::string& system_name) const;

  /// Seconds to move `num_rows` records of `row_bytes` each across the
  /// named connector (either direction; the model is symmetric).
  [[nodiscard]] Result<double> TransferSeconds(const std::string& system_name,
                                               int64_t num_rows, int64_t row_bytes) const;

  /// Seconds to relay data from `from_system` to `to_system` through
  /// Teradata ("data cannot be transferred directly between two remote
  /// systems"). Either endpoint may be "teradata", costing only one hop.
  [[nodiscard]] Result<double> RelaySeconds(const std::string& from_system,
                                            const std::string& to_system, int64_t num_rows,
                                            int64_t row_bytes) const;

 private:
  std::map<std::string, ConnectorParams> connectors_;
};

/// The reserved name of the master engine.
inline const char kTeradataSystemName[] = "teradata";

}  // namespace intellisphere::fed

#endif  // INTELLISPHERE_FEDERATION_QUERYGRID_H_
