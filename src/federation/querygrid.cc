#include "federation/querygrid.h"

namespace intellisphere::fed {

Status QueryGrid::RegisterConnector(const std::string& system_name,
                                    ConnectorParams params) {
  if (system_name == kTeradataSystemName) {
    return Status::InvalidArgument(
        "teradata is the master engine, not a connector endpoint");
  }
  if (connectors_.count(system_name)) {
    return Status::AlreadyExists("connector to '" + system_name + "'");
  }
  connectors_.emplace(system_name, params);
  return Status::OK();
}

bool QueryGrid::HasConnector(const std::string& system_name) const {
  return connectors_.count(system_name) > 0;
}

Result<double> QueryGrid::TransferSeconds(const std::string& system_name,
                                          int64_t num_rows,
                                          int64_t row_bytes) const {
  auto it = connectors_.find(system_name);
  if (it == connectors_.end()) {
    return Status::NotFound("connector to '" + system_name + "'");
  }
  if (num_rows < 0 || row_bytes < 0) {
    return Status::InvalidArgument("negative transfer volume");
  }
  const ConnectorParams& p = it->second;
  double rows = static_cast<double>(num_rows) * p.pushdown_selectivity;
  double bytes = rows * static_cast<double>(row_bytes);
  return p.setup_seconds + rows * p.per_record_us * 1e-6 +
         bytes / p.bandwidth_bytes_per_sec;
}

Result<double> QueryGrid::RelaySeconds(const std::string& from_system,
                                       const std::string& to_system,
                                       int64_t num_rows,
                                       int64_t row_bytes) const {
  if (from_system == to_system) return 0.0;
  double total = 0.0;
  if (from_system != kTeradataSystemName) {
    ISPHERE_ASSIGN_OR_RETURN(double hop,
                             TransferSeconds(from_system, num_rows, row_bytes));
    total += hop;
  }
  if (to_system != kTeradataSystemName) {
    ISPHERE_ASSIGN_OR_RETURN(double hop,
                             TransferSeconds(to_system, num_rows, row_bytes));
    total += hop;
  }
  return total;
}

}  // namespace intellisphere::fed
