// EXPLAIN-style rendering of placement plans: the full cost breakdown the
// optimizer saw — per-candidate transfer vs. operator seconds, the costing
// approach and algorithm behind every number, eliminated algorithm
// candidates with the applicability rule that killed them, and eliminated
// hosts with the reason — as a human-readable tree and as JSON.
//
// Rendering is pure: it reads only the provenance-complete plan structs
// (the planners always collect full provenance), so an explanation can be
// produced for any plan after the fact, with no side channels and no
// re-estimation. Output is deterministic for a given plan (fixed number
// formatting), which is what the golden tests pin down.

#ifndef INTELLISPHERE_FEDERATION_EXPLAIN_H_
#define INTELLISPHERE_FEDERATION_EXPLAIN_H_

#include <string>

#include "federation/intellisphere.h"

namespace intellisphere::fed {

/// Both renderings of one plan.
struct PlacementExplanation {
  std::string tree;  ///< human-readable tree, ASCII box-drawing
  std::string json;  ///< machine-readable JSON object
};

/// Explains a single-operator placement plan (PlanJoin / PlanAgg /
/// PlanScan result).
PlacementExplanation ExplainPlacement(const PlacementPlan& plan);

/// Explains a two-operator pipeline plan (PlanJoinThenAgg result).
PlacementExplanation ExplainPipeline(const PipelinePlan& plan);

/// Explains a DP search result (PlanQuery / SearchPlan): the chosen plan
/// tree rendered node by node (placement, transfer vs. operator seconds,
/// approach/algorithm provenance per node), every completed alternative's
/// headline, and the subplans the search dropped — eliminated hosts,
/// dominated DP entries, prune_factor victims — with their reasons. The
/// JSON form is one top-level `query_plan` object (schema checked by
/// scripts/check_explain_json.py).
PlacementExplanation ExplainQueryPlan(const QueryPlan& plan);

}  // namespace intellisphere::fed

#endif  // INTELLISPHERE_FEDERATION_EXPLAIN_H_
