// The IntelliSphere federation facade (Figure 1): Teradata as the master
// engine, remote systems registered with costing profiles and QueryGrid
// connectors, foreign tables registered with their location, and a
// cost-based placement optimizer that enumerates the paper's candidate
// placements for an operator — each remote system owning (part of) the
// input data, or Teradata itself — and costs each as
//   transfer-in (QueryGrid relay) + estimated operator elapsed time.

#ifndef INTELLISPHERE_FEDERATION_INTELLISPHERE_H_
#define INTELLISPHERE_FEDERATION_INTELLISPHERE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hybrid.h"
#include "engine/local_cost_model.h"
#include "federation/plan_search.h"
#include "federation/querygrid.h"
#include "relational/cardinality.h"
#include "relational/catalog.h"
#include "relational/query.h"
#include "remote/remote_system.h"
#include "serving/admission.h"
#include "serving/service.h"

namespace intellisphere::fed {

/// One candidate placement of an operator, with the costing provenance
/// ExplainPlacement renders.
struct PlacementOption {
  std::string system;  ///< executing system ("teradata" or a remote name)
  double transfer_seconds = 0.0;  ///< QueryGrid cost to stage the inputs
  double operator_seconds = 0.0;  ///< estimated elapsed time of the operator
  double total_seconds() const { return transfer_seconds + operator_seconds; }

  /// Costing approach that produced operator_seconds: "local" for the
  /// master engine, otherwise the profile's CostingApproachName.
  std::string approach;
  /// Chosen physical algorithm (sub-op path) or empty.
  std::string algorithm;
  /// Every surviving algorithm candidate's estimate (sub-op path).
  std::vector<core::AlgorithmEstimate> algorithm_candidates;
  /// Algorithms the applicability rules eliminated, with the killing rule.
  std::vector<core::EliminatedAlgorithm> eliminated_algorithms;
  /// Online-remedy provenance (logical-op path).
  bool used_remedy = false;
  double remedy_alpha = 1.0;
  /// Degradation provenance (DESIGN.md §12): non-empty when the estimate
  /// was produced down the breaker-open fallback ladder (e.g.
  /// "breaker_open:sub_op", "breaker_open:last_known_good").
  std::string fell_back_reason;
};

/// A candidate host the planner dropped entirely, with the reason (e.g. the
/// engine cannot run the operator, or every algorithm was eliminated).
struct EliminatedPlacement {
  std::string system;
  std::string reason;
};

/// The optimizer's decision: all costed options, cheapest first.
struct PlacementPlan {
  std::vector<PlacementOption> options;
  /// The cheapest placement. FailedPrecondition when the plan holds no
  /// options (planners never return such a plan, but a default-constructed
  /// or filtered one may be empty).
  [[nodiscard]] Result<PlacementOption> best() const;
  /// The operator descriptor the plan was costed for.
  rel::SqlOperator op;
  /// Candidate hosts that were considered but could not run the operator.
  std::vector<EliminatedPlacement> eliminated;
};

/// One candidate placement of a two-operator pipeline (join then
/// aggregation over the join result). The intermediate result may remain
/// on the system that produced it (Section 2, "Query Plans").
struct PipelinePlacement {
  std::string join_system;
  std::string agg_system;
  double input_transfer_seconds = 0.0;    ///< staging the base tables
  double join_seconds = 0.0;
  double interm_transfer_seconds = 0.0;   ///< moving the join result
  double agg_seconds = 0.0;
  double result_transfer_seconds = 0.0;   ///< final answer back to Teradata
  double total_seconds() const {
    return input_transfer_seconds + join_seconds + interm_transfer_seconds +
           agg_seconds + result_transfer_seconds;
  }

  /// Per-stage costing provenance ("local" or CostingApproachName).
  std::string join_approach;
  std::string join_algorithm;
  std::string agg_approach;
  std::string agg_algorithm;
};

/// All costed pipeline placements, cheapest first.
struct PipelinePlan {
  std::vector<PipelinePlacement> options;
  /// The cheapest pipeline placement; FailedPrecondition when empty.
  [[nodiscard]] Result<PipelinePlacement> best() const;
  rel::SqlOperator join_op;
  rel::SqlOperator agg_op;
  /// (host, stage) combinations the planner dropped, with reasons.
  std::vector<EliminatedPlacement> eliminated;
};

/// The federation facade.
class IntelliSphere {
 public:
  IntelliSphere() = default;
  explicit IntelliSphere(const eng::LocalCostParams& local_params)
      : local_model_(local_params) {}

  /// Registers a remote system: the live engine handle, its costing
  /// profile, and its QueryGrid connector.
  [[nodiscard]] Status RegisterRemoteSystem(std::unique_ptr<remote::RemoteSystem> system,
                                            core::CostingProfile profile,
                                            ConnectorParams connector);

  /// Registers a (possibly foreign) table; `def.location` must be
  /// "teradata" or a registered remote system.
  [[nodiscard]] Status RegisterTable(rel::TableDef def);

  [[nodiscard]] Result<rel::TableDef> GetTable(const std::string& name) const;
  [[nodiscard]] Result<remote::RemoteSystem*> GetSystem(const std::string& name) const;
  std::vector<std::string> SystemNames() const;

  /// The unified planning entry point (DESIGN.md §15): runs the DP
  /// join-order x placement search over a declarative QuerySpec and
  /// returns the full QueryPlan — chosen tree, every completed candidate
  /// (cheapest first), and the subplans the search dropped. Tables are
  /// resolved against the catalog in relation order (NotFound for unknown
  /// names); a structurally bad spec is InvalidArgument. All operator
  /// costing goes through one batched-costing call per DP level — the
  /// attached EstimationService's EstimateBatch when present (cache +
  /// batched-GEMM path), CostEstimator::EstimateBatch otherwise; the
  /// master engine's analytic model is evaluated inline. Planning always
  /// collects full provenance (the plan is what EXPLAIN renders); the
  /// context contributes the deployment clock, an optional trace sink (one
  /// `plan.candidate` span per costed or eliminated placement under a
  /// `plan.query` root), a metrics registry, and a choice-policy override.
  [[nodiscard]] Result<QueryPlan> PlanQuery(
      const QuerySpec& spec, const core::EstimateContext& ctx = {},
      const PlannerOptions& options = {}) const;

  /// Costs all placements of joining two registered tables on `a1` with an
  /// extra predicate selectivity, projecting the given byte widths.
  /// Candidates: each distinct system owning one of the inputs, plus
  /// Teradata. Options are sorted cheapest-first. A thin wrapper over
  /// PlanQuery on the equivalent two-relation spec (bit-identical results;
  /// pinned by the wrapper-parity regression tests).
  [[nodiscard]] Result<PlacementPlan> PlanJoin(
      const std::string& left_table, const std::string& right_table,
      int64_t left_projected_bytes, int64_t right_projected_bytes,
      double extra_selectivity = 1.0,
      const core::EstimateContext& ctx = {}) const;

  /// Costs all placements of aggregating a registered table by
  /// `group_column` with `num_aggregates` SUMs. A thin wrapper over
  /// PlanQuery on the equivalent single-relation spec.
  [[nodiscard]] Result<PlacementPlan> PlanAgg(
      const std::string& table, const std::string& group_column,
      int num_aggregates, const core::EstimateContext& ctx = {}) const;

  /// Costs all placements of a selection + projection over a registered
  /// table. When the scan would run on Teradata, QueryGrid's predicate
  /// pushdown already reduces the transferred volume to the survivors.
  /// A thin wrapper over PlanQuery on the equivalent bare-scan spec.
  [[nodiscard]] Result<PlacementPlan> PlanScan(
      const std::string& table, double selectivity, int64_t projected_bytes,
      const core::EstimateContext& ctx = {}) const;

  /// Costs every placement pair of a two-operator pipeline: join the two
  /// tables on a1 (projecting the given widths, applying
  /// `extra_selectivity`), then GROUP BY `group_column` (a column of the
  /// left table surviving the projection) computing `num_aggregates` SUMs
  /// over the join result. The join may run on either owner or Teradata;
  /// the aggregation on the join's host (keeping the intermediate in
  /// place) or on Teradata; the final answer always returns to Teradata.
  /// A thin wrapper over PlanQuery on the equivalent join + aggregate spec
  /// with result_to_master set.
  [[nodiscard]] Result<PipelinePlan> PlanJoinThenAgg(
      const std::string& left_table, const std::string& right_table,
      int64_t left_projected_bytes, int64_t right_projected_bytes,
      double extra_selectivity, const std::string& group_column,
      int num_aggregates, const core::EstimateContext& ctx = {}) const;

  /// Executes the plan's best placement on the actual (simulated) system
  /// and feeds the observed cost back into the costing profile's log.
  /// Returns the observed elapsed seconds of the operator itself.
  [[nodiscard]] Result<double> ExecuteBest(const PlacementPlan& plan);

  /// Routes the planners' remote cost estimates through a serving-layer
  /// cache. The service must wrap *this* facade's cost_estimator()
  /// (InvalidArgument otherwise) and must outlive the facade; the local
  /// Teradata model is analytic and stays uncached. Detach with nullptr.
  /// Cached planning is bit-identical to uncached planning — the cache
  /// keys on everything an estimate depends on, and retraining bumps the
  /// estimator's model epoch, which invalidates on read.
  [[nodiscard]] Status AttachEstimationService(
      const serving::EstimationService* service);

  /// Puts the attached estimation service behind an admission controller:
  /// the planners' remote cost batches are admitted, degraded, or shed per
  /// the controller's ladder (DESIGN.md §17), with tenant/priority/deadline
  /// read from the planning EstimateContext. The controller must wrap the
  /// currently attached service (InvalidArgument otherwise — attach the
  /// service first) and must outlive the facade. Detach with nullptr.
  /// A shed batch surfaces as the plan search's error (ResourceExhausted /
  /// DeadlineExceeded): an overloaded serving layer fails planning fast
  /// instead of stalling it.
  [[nodiscard]] Status AttachAdmissionController(
      const serving::AdmissionController* admission);

  core::CostEstimator& cost_estimator() { return estimator_; }
  const core::CostEstimator& cost_estimator() const { return estimator_; }
  QueryGrid& query_grid() { return grid_; }
  const eng::LocalCostModel& local_model() const { return local_model_; }

 private:
  /// The DP search's batched-costing hook: one Result per request, in
  /// request order. Master-engine ("teradata") requests are evaluated
  /// inline on the analytic local model; remote requests go through the
  /// attached EstimationService::EstimateBatch when present (dedup, cache,
  /// batched GEMM), or are grouped per system through
  /// CostEstimator::EstimateBatch otherwise — both documented
  /// bit-identical to the scalar Estimate path. The returned estimates'
  /// approach strings for Teradata are conventionally "local" (set by the
  /// search via its ApproachLabel).
  std::vector<Result<core::HybridEstimate>> CostBatch(
      const std::vector<PlanCostRequest>& requests,
      const core::EstimateContext& ctx) const;

  eng::LocalCostModel local_model_;
  core::CostEstimator estimator_;
  const serving::EstimationService* serving_ = nullptr;
  const serving::AdmissionController* admission_ = nullptr;
  QueryGrid grid_;
  rel::Catalog catalog_;
  std::map<std::string, std::unique_ptr<remote::RemoteSystem>> systems_;
};

}  // namespace intellisphere::fed

#endif  // INTELLISPHERE_FEDERATION_INTELLISPHERE_H_
