#include "federation/explain.h"

#include <cstddef>
#include <vector>

#include "util/json.h"

namespace intellisphere::fed {

namespace {

/// Fixed-precision seconds, shared by both renderings so tree and JSON
/// always agree (and golden tests stay stable).
std::string Sec(double seconds) { return JsonNumberShort(seconds); }

/// One tree line: `prefix` is the accumulated indentation of the parent,
/// `last` picks the branch glyph.
void TreeLine(std::string* out, const std::string& prefix, bool last,
              const std::string& text) {
  *out += prefix + (last ? "`- " : "|- ") + text + "\n";
}

/// Renders one option's sub-lines (algorithm candidates, eliminations,
/// remedy) under the option's own line.
void RenderOptionDetails(std::string* out, const std::string& prefix,
                         const PlacementOption& o) {
  std::vector<std::string> lines;
  for (const auto& c : o.algorithm_candidates) {
    lines.push_back("candidate " + c.algorithm + ": " + Sec(c.seconds) + "s");
  }
  for (const auto& e : o.eliminated_algorithms) {
    lines.push_back("eliminated " + e.algorithm + ": " + e.reason);
  }
  if (o.used_remedy) {
    lines.push_back("online remedy: alpha=" + Sec(o.remedy_alpha));
  }
  if (!o.fell_back_reason.empty()) {
    lines.push_back("degraded: " + o.fell_back_reason);
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    TreeLine(out, prefix, i + 1 == lines.size(), lines[i]);
  }
}

std::string OptionHeadline(const PlacementOption& o, size_t rank,
                           bool is_best) {
  std::string line = "option " + std::to_string(rank) + ": system=" +
                     o.system + " total=" + Sec(o.total_seconds()) +
                     "s (transfer=" + Sec(o.transfer_seconds) +
                     "s operator=" + Sec(o.operator_seconds) +
                     "s) approach=" + o.approach;
  if (!o.algorithm.empty()) line += " algorithm=" + o.algorithm;
  if (is_best) line += " [best]";
  return line;
}

std::string OptionJson(const PlacementOption& o, size_t rank,
                       const std::string& indent) {
  std::string j = indent + "{\n";
  j += indent + "  \"rank\": " + std::to_string(rank) + ",\n";
  j += indent + "  \"system\": \"" + JsonEscape(o.system) + "\",\n";
  j += indent + "  \"transfer_seconds\": " + Sec(o.transfer_seconds) + ",\n";
  j += indent + "  \"operator_seconds\": " + Sec(o.operator_seconds) + ",\n";
  j += indent + "  \"total_seconds\": " + Sec(o.total_seconds()) + ",\n";
  j += indent + "  \"approach\": \"" + JsonEscape(o.approach) + "\",\n";
  j += indent + "  \"algorithm\": \"" + JsonEscape(o.algorithm) + "\",\n";
  j += indent + "  \"used_remedy\": " + (o.used_remedy ? "true" : "false") +
       ",\n";
  j += indent + "  \"remedy_alpha\": " + Sec(o.remedy_alpha) + ",\n";
  j += indent + "  \"fell_back_reason\": \"" +
       JsonEscape(o.fell_back_reason) + "\",\n";
  j += indent + "  \"algorithm_candidates\": [";
  for (size_t i = 0; i < o.algorithm_candidates.size(); ++i) {
    const auto& c = o.algorithm_candidates[i];
    if (i > 0) j += ",";
    j += "\n" + indent + "    {\"algorithm\": \"" + JsonEscape(c.algorithm) +
         "\", \"seconds\": " + Sec(c.seconds) + "}";
  }
  if (!o.algorithm_candidates.empty()) j += "\n" + indent + "  ";
  j += "],\n";
  j += indent + "  \"eliminated_algorithms\": [";
  for (size_t i = 0; i < o.eliminated_algorithms.size(); ++i) {
    const auto& e = o.eliminated_algorithms[i];
    if (i > 0) j += ",";
    j += "\n" + indent + "    {\"algorithm\": \"" + JsonEscape(e.algorithm) +
         "\", \"reason\": \"" + JsonEscape(e.reason) + "\"}";
  }
  if (!o.eliminated_algorithms.empty()) j += "\n" + indent + "  ";
  j += "]\n";
  j += indent + "}";
  return j;
}

std::string EliminatedJson(const std::vector<EliminatedPlacement>& eliminated,
                           const std::string& indent) {
  std::string j = "[";
  for (size_t i = 0; i < eliminated.size(); ++i) {
    if (i > 0) j += ",";
    j += "\n" + indent + "  {\"system\": \"" +
         JsonEscape(eliminated[i].system) + "\", \"reason\": \"" +
         JsonEscape(eliminated[i].reason) + "\"}";
  }
  if (!eliminated.empty()) j += "\n" + indent;
  j += "]";
  return j;
}

const char* NodeKindName(QueryPlanNode::Kind kind) {
  switch (kind) {
    case QueryPlanNode::Kind::kTable: return "table";
    case QueryPlanNode::Kind::kScan: return "scan";
    case QueryPlanNode::Kind::kJoin: return "join";
    case QueryPlanNode::Kind::kAggregate: return "aggregate";
  }
  return "unknown";
}

const char* PrunedKindName(PrunedSubplan::Kind kind) {
  switch (kind) {
    case PrunedSubplan::Kind::kEliminated: return "eliminated";
    case PrunedSubplan::Kind::kDominated: return "dominated";
    case PrunedSubplan::Kind::kPruned: return "pruned";
  }
  return "unknown";
}

/// "relations 0,2,3" — readable form of a relation-subset bitmask.
std::string MaskText(uint64_t mask) {
  std::string text = "relations ";
  bool first = true;
  for (int i = 0; i < 64; ++i) {
    if ((mask >> i) & 1u) {
      if (!first) text += ",";
      text += std::to_string(i);
      first = false;
    }
  }
  if (first) text += "none";
  return text;
}

std::string QueryNodeHeadline(const QueryPlanNode& n) {
  std::string line = std::string(NodeKindName(n.kind));
  if (!n.label.empty()) line += " " + n.label;
  line += "@" + n.system;
  if (n.kind == QueryPlanNode::Kind::kTable) {
    return line + ": rows=" + std::to_string(n.output_rows) +
           " row_bytes=" + std::to_string(n.output_row_bytes);
  }
  line += " (" + MaskText(n.relation_mask) + "): subtree=" +
          Sec(n.subtree_seconds) + "s (transfer=" + Sec(n.transfer_seconds) +
          "s operator=" + Sec(n.operator_seconds) +
          "s) rows=" + std::to_string(n.output_rows) +
          " approach=" + n.approach;
  if (!n.algorithm.empty()) line += " algorithm=" + n.algorithm;
  if (n.used_remedy) line += " remedy_alpha=" + Sec(n.remedy_alpha);
  if (!n.fell_back_reason.empty()) line += " degraded=" + n.fell_back_reason;
  return line;
}

/// Recursively renders the subtree rooted at `idx` under `prefix`.
void RenderQueryNode(std::string* out, const QueryPlan& plan, int idx,
                     const std::string& prefix, bool last) {
  const QueryPlanNode& n = plan.nodes[static_cast<size_t>(idx)];
  TreeLine(out, prefix, last, QueryNodeHeadline(n));
  const std::string child_prefix = prefix + (last ? "   " : "|  ");
  for (size_t i = 0; i < n.children.size(); ++i) {
    RenderQueryNode(out, plan, n.children[i], child_prefix,
                    i + 1 == n.children.size());
  }
}

std::string QueryNodeJson(const QueryPlan& plan, int idx,
                          const std::string& indent) {
  const QueryPlanNode& n = plan.nodes[static_cast<size_t>(idx)];
  std::string j = "{\n";
  j += indent + "  \"kind\": \"" + NodeKindName(n.kind) + "\",\n";
  j += indent + "  \"system\": \"" + JsonEscape(n.system) + "\",\n";
  j += indent + "  \"label\": \"" + JsonEscape(n.label) + "\",\n";
  j += indent +
       "  \"relation_mask\": " + std::to_string(n.relation_mask) + ",\n";
  j += indent + "  \"output_rows\": " + std::to_string(n.output_rows) + ",\n";
  j += indent +
       "  \"output_row_bytes\": " + std::to_string(n.output_row_bytes) +
       ",\n";
  j += indent + "  \"transfer_seconds\": " + Sec(n.transfer_seconds) + ",\n";
  j += indent + "  \"operator_seconds\": " + Sec(n.operator_seconds) + ",\n";
  j += indent + "  \"subtree_seconds\": " + Sec(n.subtree_seconds) + ",\n";
  j += indent + "  \"approach\": \"" + JsonEscape(n.approach) + "\",\n";
  j += indent + "  \"algorithm\": \"" + JsonEscape(n.algorithm) + "\",\n";
  j += indent + "  \"used_remedy\": " + (n.used_remedy ? "true" : "false") +
       ",\n";
  j += indent + "  \"fell_back_reason\": \"" +
       JsonEscape(n.fell_back_reason) + "\",\n";
  j += indent + "  \"children\": [";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (i > 0) j += ",";
    j += "\n" + indent + "    " + QueryNodeJson(plan, n.children[i],
                                                indent + "    ");
  }
  if (!n.children.empty()) j += "\n" + indent + "  ";
  j += "]\n";
  j += indent + "}";
  return j;
}

}  // namespace

PlacementExplanation ExplainQueryPlan(const QueryPlan& plan) {
  PlacementExplanation ex;

  // --- Tree.
  ex.tree = "query plan: " + std::to_string(plan.candidates.size()) +
            " candidates, " + std::to_string(plan.pruned.size()) +
            " subplans dropped (costed=" +
            std::to_string(plan.candidates_costed) +
            " dp_entries=" + std::to_string(plan.dp_entries) + ")\n";
  // The chosen candidate's full tree, then the alternatives' headlines,
  // then everything the search dropped.
  const size_t alt_count =
      plan.candidates.size() > 1 ? plan.candidates.size() - 1 : 0;
  const size_t total =
      (plan.candidates.empty() ? 0 : 1) + alt_count + plan.pruned.size();
  size_t line_idx = 0;
  if (!plan.candidates.empty()) {
    const QueryPlanCandidate& best = plan.candidates.front();
    bool last = ++line_idx == total;
    TreeLine(&ex.tree, "", last,
             "chosen: total=" + Sec(best.total_seconds) +
                 "s (result transfer=" + Sec(best.result_transfer_seconds) +
                 "s)");
    RenderQueryNode(&ex.tree, plan, best.root, last ? "   " : "|  ", true);
    for (size_t i = 1; i < plan.candidates.size(); ++i) {
      const QueryPlanCandidate& c = plan.candidates[i];
      const QueryPlanNode& root = plan.nodes[static_cast<size_t>(c.root)];
      TreeLine(&ex.tree, "", ++line_idx == total,
               "candidate " + std::to_string(i + 1) + ": root@" + root.system +
                   " total=" + Sec(c.total_seconds) + "s");
    }
  }
  for (const auto& p : plan.pruned) {
    std::string line = std::string(PrunedKindName(p.kind)) + " " +
                       (p.description.empty() ? MaskText(p.relation_mask)
                                              : p.description);
    if (!p.reason.empty()) line += ": " + p.reason;
    TreeLine(&ex.tree, "", ++line_idx == total, line);
  }

  // --- JSON.
  ex.json = "{\n  \"query_plan\": {\n";
  ex.json += "    \"candidates_costed\": " +
             std::to_string(plan.candidates_costed) + ",\n";
  ex.json += "    \"dp_entries\": " + std::to_string(plan.dp_entries) + ",\n";
  if (!plan.candidates.empty()) {
    ex.json += "    \"best_total_seconds\": " +
               Sec(plan.candidates.front().total_seconds) + ",\n";
    ex.json += "    \"tree\": " +
               QueryNodeJson(plan, plan.candidates.front().root, "    ") +
               ",\n";
  } else {
    ex.json += "    \"best_total_seconds\": null,\n";
    ex.json += "    \"tree\": null,\n";
  }
  ex.json += "    \"candidates\": [";
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    const QueryPlanCandidate& c = plan.candidates[i];
    const QueryPlanNode& root = plan.nodes[static_cast<size_t>(c.root)];
    if (i > 0) ex.json += ",";
    ex.json += "\n      {\"rank\": " + std::to_string(i + 1) +
               ", \"system\": \"" + JsonEscape(root.system) +
               "\", \"result_transfer_seconds\": " +
               Sec(c.result_transfer_seconds) +
               ", \"total_seconds\": " + Sec(c.total_seconds) + "}";
  }
  if (!plan.candidates.empty()) ex.json += "\n    ";
  ex.json += "],\n";
  ex.json += "    \"pruned\": [";
  for (size_t i = 0; i < plan.pruned.size(); ++i) {
    const PrunedSubplan& p = plan.pruned[i];
    if (i > 0) ex.json += ",";
    ex.json += "\n      {\"kind\": \"" + std::string(PrunedKindName(p.kind)) +
               "\", \"stage\": \"" + NodeKindName(p.stage) +
               "\", \"relation_mask\": " + std::to_string(p.relation_mask) +
               ", \"system\": \"" + JsonEscape(p.system) +
               "\", \"via_system\": \"" + JsonEscape(p.via_system) +
               "\", \"subtree_seconds\": " + Sec(p.subtree_seconds) +
               ", \"reason\": \"" + JsonEscape(p.reason) +
               "\", \"description\": \"" + JsonEscape(p.description) + "\"}";
  }
  if (!plan.pruned.empty()) ex.json += "\n    ";
  ex.json += "]\n";
  ex.json += "  }\n";
  ex.json += "}\n";
  return ex;
}

PlacementExplanation ExplainPlacement(const PlacementPlan& plan) {
  PlacementExplanation ex;
  const std::string op_name = rel::OperatorTypeName(plan.op.type);

  // --- Tree.
  ex.tree = "placement plan: " + op_name + " (" +
            std::to_string(plan.options.size()) + " options, " +
            std::to_string(plan.eliminated.size()) + " hosts eliminated)\n";
  const size_t total = plan.options.size() + plan.eliminated.size();
  size_t line_idx = 0;
  for (size_t i = 0; i < plan.options.size(); ++i, ++line_idx) {
    const PlacementOption& o = plan.options[i];
    bool last = line_idx + 1 == total;
    TreeLine(&ex.tree, "", last, OptionHeadline(o, i + 1, i == 0));
    RenderOptionDetails(&ex.tree, last ? "   " : "|  ", o);
  }
  for (size_t i = 0; i < plan.eliminated.size(); ++i, ++line_idx) {
    const EliminatedPlacement& e = plan.eliminated[i];
    TreeLine(&ex.tree, "", line_idx + 1 == total,
             "eliminated host " + e.system + ": " + e.reason);
  }

  // --- JSON.
  ex.json = "{\n";
  ex.json += "  \"operator\": \"" + JsonEscape(op_name) + "\",\n";
  ex.json += "  \"options\": [";
  for (size_t i = 0; i < plan.options.size(); ++i) {
    if (i > 0) ex.json += ",";
    ex.json += "\n";
    ex.json += OptionJson(plan.options[i], i + 1, "    ");
  }
  if (!plan.options.empty()) ex.json += "\n  ";
  ex.json += "],\n";
  ex.json +=
      "  \"eliminated_placements\": " + EliminatedJson(plan.eliminated, "  ") +
      "\n";
  ex.json += "}\n";
  return ex;
}

PlacementExplanation ExplainPipeline(const PipelinePlan& plan) {
  PlacementExplanation ex;

  // --- Tree.
  ex.tree = "pipeline plan: join then aggregation (" +
            std::to_string(plan.options.size()) + " options, " +
            std::to_string(plan.eliminated.size()) +
            " placements eliminated)\n";
  const size_t total = plan.options.size() + plan.eliminated.size();
  size_t line_idx = 0;
  for (size_t i = 0; i < plan.options.size(); ++i, ++line_idx) {
    const PipelinePlacement& p = plan.options[i];
    bool last = line_idx + 1 == total;
    std::string head = "option " + std::to_string(i + 1) + ": join@" +
                       p.join_system + " agg@" + p.agg_system +
                       " total=" + Sec(p.total_seconds()) + "s";
    if (i == 0) head += " [best]";
    TreeLine(&ex.tree, "", last, head);
    const std::string prefix = last ? "   " : "|  ";
    TreeLine(&ex.tree, prefix, false,
             "input transfer: " + Sec(p.input_transfer_seconds) + "s");
    std::string join_line = "join: " + Sec(p.join_seconds) + "s approach=" +
                            p.join_approach;
    if (!p.join_algorithm.empty()) {
      join_line += " algorithm=" + p.join_algorithm;
    }
    TreeLine(&ex.tree, prefix, false, join_line);
    TreeLine(&ex.tree, prefix, false,
             "intermediate transfer: " + Sec(p.interm_transfer_seconds) +
                 "s");
    std::string agg_line = "aggregation: " + Sec(p.agg_seconds) +
                           "s approach=" + p.agg_approach;
    if (!p.agg_algorithm.empty()) agg_line += " algorithm=" + p.agg_algorithm;
    TreeLine(&ex.tree, prefix, false, agg_line);
    TreeLine(&ex.tree, prefix, true,
             "result transfer: " + Sec(p.result_transfer_seconds) + "s");
  }
  for (size_t i = 0; i < plan.eliminated.size(); ++i, ++line_idx) {
    const EliminatedPlacement& e = plan.eliminated[i];
    TreeLine(&ex.tree, "", line_idx + 1 == total,
             "eliminated " + e.system + ": " + e.reason);
  }

  // --- JSON.
  ex.json = "{\n";
  ex.json += "  \"operator\": \"pipeline\",\n";
  ex.json += "  \"options\": [";
  for (size_t i = 0; i < plan.options.size(); ++i) {
    const PipelinePlacement& p = plan.options[i];
    if (i > 0) ex.json += ",";
    ex.json += "\n    {\n";
    ex.json += "      \"rank\": " + std::to_string(i + 1) + ",\n";
    ex.json +=
        "      \"join_system\": \"" + JsonEscape(p.join_system) + "\",\n";
    ex.json += "      \"agg_system\": \"" + JsonEscape(p.agg_system) + "\",\n";
    ex.json += "      \"input_transfer_seconds\": " +
               Sec(p.input_transfer_seconds) + ",\n";
    ex.json += "      \"join_seconds\": " + Sec(p.join_seconds) + ",\n";
    ex.json += "      \"interm_transfer_seconds\": " +
               Sec(p.interm_transfer_seconds) + ",\n";
    ex.json += "      \"agg_seconds\": " + Sec(p.agg_seconds) + ",\n";
    ex.json += "      \"result_transfer_seconds\": " +
               Sec(p.result_transfer_seconds) + ",\n";
    ex.json += "      \"total_seconds\": " + Sec(p.total_seconds()) + ",\n";
    ex.json +=
        "      \"join_approach\": \"" + JsonEscape(p.join_approach) + "\",\n";
    ex.json += "      \"join_algorithm\": \"" + JsonEscape(p.join_algorithm) +
               "\",\n";
    ex.json +=
        "      \"agg_approach\": \"" + JsonEscape(p.agg_approach) + "\",\n";
    ex.json += "      \"agg_algorithm\": \"" + JsonEscape(p.agg_algorithm) +
               "\"\n";
    ex.json += "    }";
  }
  if (!plan.options.empty()) ex.json += "\n  ";
  ex.json += "],\n";
  ex.json +=
      "  \"eliminated_placements\": " + EliminatedJson(plan.eliminated, "  ") +
      "\n";
  ex.json += "}\n";
  return ex;
}

}  // namespace intellisphere::fed
