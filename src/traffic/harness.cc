#include "traffic/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

namespace intellisphere::traffic {

namespace {

/// True when any costed option carries degradation provenance — the plan
/// was answered, but at least one placement's estimate came down a
/// fallback rung (breaker or admission overload). The Teradata option is
/// analytic and never falls back, so checking only best() would
/// under-count degraded answers.
bool PlanDegraded(const fed::PlacementPlan& plan) {
  for (const auto& option : plan.options) {
    if (!option.fell_back_reason.empty()) return true;
  }
  return false;
}

}  // namespace

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  auto rank = static_cast<size_t>(std::ceil(q * n));
  if (rank > 0) --rank;
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

Result<std::vector<ItemTruth>> ComputeOracle(
    fed::IntelliSphere* sphere, const std::vector<WorkItem>& items) {
  std::vector<ItemTruth> truth;
  truth.reserve(items.size());
  for (const WorkItem& item : items) {
    ISPHERE_ASSIGN_OR_RETURN(
        fed::PlacementPlan plan,
        sphere->PlanAgg(item.table, item.group_column, item.num_aggregates));
    if (plan.options.empty()) {
      return Status::FailedPrecondition(
          "ComputeOracle: no placement options for table " + item.table);
    }
    ItemTruth t;
    t.oracle_seconds = std::numeric_limits<double>::infinity();
    for (const auto& option : plan.options) {
      double op_seconds = 0.0;
      if (option.system == fed::kTeradataSystemName) {
        ISPHERE_ASSIGN_OR_RETURN(op_seconds,
                                 sphere->local_model().EstimateSeconds(plan.op));
      } else {
        ISPHERE_ASSIGN_OR_RETURN(remote::RemoteSystem * system,
                                 sphere->GetSystem(option.system));
        ISPHERE_ASSIGN_OR_RETURN(remote::QueryResult observed,
                                 system->Execute(plan.op));
        op_seconds = observed.elapsed_seconds;
      }
      const double total = option.transfer_seconds + op_seconds;
      t.total_seconds[option.system] = total;
      t.oracle_seconds = std::min(t.oracle_seconds, total);
    }
    truth.push_back(std::move(t));
  }
  return truth;
}

Result<TrafficReport> RunTraffic(const fed::IntelliSphere& sphere,
                                 const std::vector<WorkItem>& items,
                                 const std::vector<ItemTruth>& truth,
                                 const TrafficOptions& opts) {
  if (items.empty()) {
    return Status::InvalidArgument("RunTraffic: items must be non-empty");
  }
  if (!truth.empty() && truth.size() != items.size()) {
    return Status::InvalidArgument(
        "RunTraffic: truth must be empty or one entry per work item");
  }
  ISPHERE_ASSIGN_OR_RETURN(
      std::vector<TrafficEvent> events,
      GenerateTraffic(opts, static_cast<int>(items.size())));

  // Stable tenant-name storage: EstimateContext::tenant is a string_view
  // into this vector for the whole run.
  std::vector<std::string> tenant_names;
  tenant_names.reserve(static_cast<size_t>(opts.tenants));
  for (int i = 0; i < opts.tenants; ++i) {
    tenant_names.push_back("tenant" + std::to_string(i));
  }

  struct TenantAccum {
    bool background = false;
    int64_t arrivals = 0;
    int64_t answered = 0;
    int64_t degraded = 0;
    int64_t shed = 0;
    std::vector<double> latencies_us;
  };
  std::vector<TenantAccum> accums(static_cast<size_t>(opts.tenants));

  TrafficReport report;
  std::vector<double> all_latencies_us;
  all_latencies_us.reserve(events.size());
  double regret_sum = 0.0;

  for (const TrafficEvent& ev : events) {
    TenantAccum& acc = accums[static_cast<size_t>(ev.tenant)];
    acc.background = ev.background;
    ++acc.arrivals;
    ++report.arrivals;

    core::EstimateContext ctx;
    ctx.now = ev.time;
    ctx.tenant = tenant_names[static_cast<size_t>(ev.tenant)];
    ctx.priority = ev.background ? core::RequestPriority::kBackground
                                 : core::RequestPriority::kForeground;
    if (opts.deadline_seconds > 0.0) {
      ctx.deadline_seconds = ev.time + opts.deadline_seconds;
    }

    const WorkItem& item = items[static_cast<size_t>(ev.item)];
    const auto started = std::chrono::steady_clock::now();
    const Result<fed::PlacementPlan> plan =
        sphere.PlanAgg(item.table, item.group_column, item.num_aggregates,
                       ctx);
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - started)
            .count();

    if (!plan.ok()) {
      switch (plan.status().code()) {
        case StatusCode::kResourceExhausted:
          ++report.shed_load;
          ++acc.shed;
          break;
        case StatusCode::kDeadlineExceeded:
          ++report.shed_deadline;
          ++acc.shed;
          break;
        default:
          ++report.planner_errors;
          break;
      }
      continue;
    }

    ++acc.answered;
    acc.latencies_us.push_back(latency_us);
    all_latencies_us.push_back(latency_us);
    if (PlanDegraded(plan.value())) {
      ++report.answered_degraded;
      ++acc.degraded;
    } else {
      ++report.answered_full;
    }

    if (!truth.empty()) {
      const ItemTruth& t = truth[static_cast<size_t>(ev.item)];
      ISPHERE_ASSIGN_OR_RETURN(fed::PlacementOption best,
                               plan.value().best());
      const auto chosen = t.total_seconds.find(best.system);
      if (chosen != t.total_seconds.end() && t.oracle_seconds > 0.0) {
        const double regret =
            (chosen->second - t.oracle_seconds) / t.oracle_seconds;
        regret_sum += regret;
        report.max_regret = std::max(report.max_regret, regret);
        ++report.regret_samples;
      }
    }
  }

  const int64_t answered = report.answered_full + report.answered_degraded;
  const int64_t shed = report.shed_load + report.shed_deadline;
  const int64_t non_shed = report.arrivals - shed;
  report.availability =
      non_shed > 0 ? static_cast<double>(answered) /
                         static_cast<double>(non_shed)
                   : 1.0;
  if (report.arrivals > 0) {
    report.shed_fraction = static_cast<double>(shed) /
                           static_cast<double>(report.arrivals);
    report.degraded_fraction =
        static_cast<double>(report.answered_degraded) /
        static_cast<double>(report.arrivals);
  }
  report.p50_us = Percentile(all_latencies_us, 0.50);
  report.p99_us = Percentile(all_latencies_us, 0.99);
  if (report.regret_samples > 0) {
    report.mean_regret =
        regret_sum / static_cast<double>(report.regret_samples);
  }

  for (int i = 0; i < opts.tenants; ++i) {
    const TenantAccum& acc = accums[static_cast<size_t>(i)];
    if (acc.arrivals == 0) continue;
    TenantTrafficStats stats;
    stats.tenant = tenant_names[static_cast<size_t>(i)];
    stats.background = acc.background;
    stats.arrivals = acc.arrivals;
    stats.answered = acc.answered;
    stats.degraded = acc.degraded;
    stats.shed = acc.shed;
    stats.p50_us = Percentile(acc.latencies_us, 0.50);
    stats.p99_us = Percentile(acc.latencies_us, 0.99);
    stats.slo_violated = acc.answered > 0 && stats.p99_us > opts.slo_p99_us;
    if (stats.slo_violated) ++report.slo_violations;
    report.tenants.push_back(std::move(stats));
  }
  return report;
}

}  // namespace intellisphere::traffic
