#include "traffic/generator.h"

#include <algorithm>
#include <cmath>

namespace intellisphere::traffic {

Result<TrafficOptions> TrafficOptions::FromProperties(
    const Properties& props) {
  TrafficOptions opts;
  if (props.Contains(kTrafficTenantsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t tenants,
                             props.GetInt(kTrafficTenantsKey));
    opts.tenants = static_cast<int>(tenants);
  }
  if (props.Contains(kTrafficDurationKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.duration_seconds,
                             props.GetDouble(kTrafficDurationKey));
  }
  if (props.Contains(kTrafficBaseRateKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.base_rate,
                             props.GetDouble(kTrafficBaseRateKey));
  }
  if (props.Contains(kTrafficZipfExponentKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.zipf_exponent,
                             props.GetDouble(kTrafficZipfExponentKey));
  }
  if (props.Contains(kTrafficDiurnalAmplitudeKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.diurnal_amplitude,
                             props.GetDouble(kTrafficDiurnalAmplitudeKey));
  }
  if (props.Contains(kTrafficDiurnalPeriodKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.diurnal_period_seconds,
                             props.GetDouble(kTrafficDiurnalPeriodKey));
  }
  if (props.Contains(kTrafficBurstFactorKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.burst_factor,
                             props.GetDouble(kTrafficBurstFactorKey));
  }
  if (props.Contains(kTrafficBurstPeriodKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.burst_period_seconds,
                             props.GetDouble(kTrafficBurstPeriodKey));
  }
  if (props.Contains(kTrafficBurstDutyKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.burst_duty,
                             props.GetDouble(kTrafficBurstDutyKey));
  }
  if (props.Contains(kTrafficBackgroundFractionKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.background_fraction,
                             props.GetDouble(kTrafficBackgroundFractionKey));
  }
  if (props.Contains(kTrafficDeadlineKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.deadline_seconds,
                             props.GetDouble(kTrafficDeadlineKey));
  }
  if (props.Contains(kTrafficSloP99UsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.slo_p99_us,
                             props.GetDouble(kTrafficSloP99UsKey));
  }
  if (props.Contains(kTrafficSeedKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t seed, props.GetInt(kTrafficSeedKey));
    opts.seed = static_cast<uint64_t>(seed);
  }
  ISPHERE_RETURN_NOT_OK(opts.Validate());
  return opts;
}

Status TrafficOptions::Validate() const {
  if (tenants < 1) {
    return Status::InvalidArgument("traffic.tenants must be >= 1");
  }
  if (!(duration_seconds > 0.0)) {
    return Status::InvalidArgument(
        "traffic.duration_seconds must be > 0");
  }
  if (!(base_rate > 0.0)) {
    return Status::InvalidArgument("traffic.base_rate must be > 0");
  }
  if (!(zipf_exponent > 0.0)) {
    return Status::InvalidArgument("traffic.zipf_exponent must be > 0");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0) {
    return Status::InvalidArgument(
        "traffic.diurnal_amplitude must be in [0, 1)");
  }
  if (!(diurnal_period_seconds > 0.0)) {
    return Status::InvalidArgument(
        "traffic.diurnal_period_seconds must be > 0");
  }
  if (burst_factor < 1.0) {
    return Status::InvalidArgument("traffic.burst_factor must be >= 1");
  }
  if (!(burst_period_seconds > 0.0)) {
    return Status::InvalidArgument(
        "traffic.burst_period_seconds must be > 0");
  }
  if (!(burst_duty > 0.0) || burst_duty > 1.0) {
    return Status::InvalidArgument("traffic.burst_duty must be in (0, 1]");
  }
  if (background_fraction < 0.0 || background_fraction >= 1.0) {
    return Status::InvalidArgument(
        "traffic.background_fraction must be in [0, 1)");
  }
  if (deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "traffic.deadline_seconds must be >= 0");
  }
  if (!(slo_p99_us > 0.0)) {
    return Status::InvalidArgument("traffic.slo_p99_us must be > 0");
  }
  return Status::OK();
}

ZipfSampler::ZipfSampler(int n, double s) {
  cdf_.reserve(static_cast<size_t>(n));
  double total = 0.0;
  for (int r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->Uniform(0.0, 1.0);
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int>(cdf_.size()) - 1;
  return static_cast<int>(it - cdf_.begin());
}

double ArrivalRateAt(const TrafficOptions& opts, double t) {
  const double diurnal =
      1.0 + opts.diurnal_amplitude *
                std::sin(2.0 * M_PI * t / opts.diurnal_period_seconds);
  const double phase =
      t - opts.burst_period_seconds *
              std::floor(t / opts.burst_period_seconds);
  const double burst =
      phase < opts.burst_duty * opts.burst_period_seconds ? opts.burst_factor
                                                          : 1.0;
  return opts.base_rate * diurnal * burst;
}

Result<std::vector<TrafficEvent>> GenerateTraffic(
    const TrafficOptions& opts, int num_items) {
  ISPHERE_RETURN_NOT_OK(opts.Validate());
  if (num_items < 1) {
    return Status::InvalidArgument(
        "GenerateTraffic: num_items must be >= 1");
  }
  Rng rng(opts.seed);
  const ZipfSampler tenant_sampler(opts.tenants, opts.zipf_exponent);
  const ZipfSampler item_sampler(num_items, opts.zipf_exponent);
  // First tenant index in the background (low-priority) band: the
  // most-popular 1 - background_fraction of tenants are foreground.
  const int first_background = static_cast<int>(std::ceil(
      (1.0 - opts.background_fraction) * static_cast<double>(opts.tenants)));

  // Ogata thinning: homogeneous candidates at the peak rate, each kept with
  // probability rate(t) / rate_max.
  const double rate_max =
      opts.base_rate * (1.0 + opts.diurnal_amplitude) * opts.burst_factor;
  std::vector<TrafficEvent> events;
  events.reserve(static_cast<size_t>(opts.base_rate * opts.duration_seconds));
  double t = 0.0;
  while (true) {
    // Exponential inter-arrival via inverse CDF; Uniform is [0, 1), so the
    // log argument 1 - u is in (0, 1].
    t += -std::log(1.0 - rng.Uniform(0.0, 1.0)) / rate_max;
    if (t >= opts.duration_seconds) break;
    if (!rng.Bernoulli(ArrivalRateAt(opts, t) / rate_max)) continue;
    TrafficEvent ev;
    ev.time = t;
    ev.tenant = tenant_sampler.Sample(&rng);
    ev.background = ev.tenant >= first_background;
    ev.item = item_sampler.Sample(&rng);
    events.push_back(ev);
  }
  return events;
}

}  // namespace intellisphere::traffic
