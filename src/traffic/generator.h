// Seeded deterministic load generation for the closed-loop serving harness
// (DESIGN.md §17): N tenants with Zipfian popularity, Zipfian work-item
// skew, and a non-homogeneous Poisson arrival process (diurnal sinusoid ×
// periodic burst windows) sampled by thinning — all on the simulated
// deployment clock, all driven by one util::Rng seed. The same options
// produce byte-identical traces on every machine, which is what lets the
// traffic bench pin shed/degraded fractions as regression gates.

#ifndef INTELLISPHERE_TRAFFIC_GENERATOR_H_
#define INTELLISPHERE_TRAFFIC_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "util/properties.h"
#include "util/rng.h"
#include "util/status.h"

namespace intellisphere::traffic {

/// Properties keys for the traffic generator (docs/CONFIG.md).
inline constexpr char kTrafficTenantsKey[] = "traffic.tenants";
inline constexpr char kTrafficDurationKey[] = "traffic.duration_seconds";
inline constexpr char kTrafficBaseRateKey[] = "traffic.base_rate";
inline constexpr char kTrafficZipfExponentKey[] = "traffic.zipf_exponent";
inline constexpr char kTrafficDiurnalAmplitudeKey[] =
    "traffic.diurnal_amplitude";
inline constexpr char kTrafficDiurnalPeriodKey[] =
    "traffic.diurnal_period_seconds";
inline constexpr char kTrafficBurstFactorKey[] = "traffic.burst_factor";
inline constexpr char kTrafficBurstPeriodKey[] =
    "traffic.burst_period_seconds";
inline constexpr char kTrafficBurstDutyKey[] = "traffic.burst_duty";
inline constexpr char kTrafficBackgroundFractionKey[] =
    "traffic.background_fraction";
inline constexpr char kTrafficDeadlineKey[] = "traffic.deadline_seconds";
inline constexpr char kTrafficSloP99UsKey[] = "traffic.slo_p99_us";
inline constexpr char kTrafficSeedKey[] = "traffic.seed";

struct TrafficOptions {
  /// Number of tenants; tenant popularity is Zipf(zipf_exponent), so
  /// tenant 0 dominates and the tail is sparse.
  int tenants = 8;
  /// Trace length on the deployment clock.
  double duration_seconds = 60.0;
  /// Mean arrival rate (requests/second) before diurnal/burst modulation.
  double base_rate = 50.0;
  /// Skew of both the tenant and the work-item distributions (> 0; larger
  /// = more skewed; 0.99–1.2 is web-workload-like).
  double zipf_exponent = 1.1;
  /// Diurnal sinusoid: rate is scaled by 1 + amplitude*sin(2*pi*t/period).
  /// Amplitude in [0, 1).
  double diurnal_amplitude = 0.4;
  double diurnal_period_seconds = 60.0;
  /// Burst windows: within the first `burst_duty` fraction of every
  /// `burst_period_seconds`, the rate is additionally multiplied by
  /// `burst_factor` (>= 1; 1 = no bursts).
  double burst_factor = 4.0;
  double burst_period_seconds = 10.0;
  double burst_duty = 0.2;
  /// The most-popular `1 - background_fraction` of tenants are foreground
  /// (planner traffic); the rest issue background-class requests
  /// (lifecycle probes, warmers). In [0, 1).
  double background_fraction = 0.25;
  /// Relative per-request deadline on the deployment clock (0 = none);
  /// the harness turns this into EstimateContext::deadline_seconds.
  double deadline_seconds = 0.0;
  /// Per-tenant p99 wall-latency SLO for *answered* requests, microseconds.
  double slo_p99_us = 5000.0;
  uint64_t seed = 1234;

  /// Reads the traffic.* keys; absent keys keep their defaults.
  [[nodiscard]] static Result<TrafficOptions> FromProperties(
      const Properties& props);
  [[nodiscard]] Status Validate() const;
};

/// One arrival in the generated trace.
struct TrafficEvent {
  double time = 0.0;  ///< deployment-clock arrival time
  int tenant = 0;
  bool background = false;  ///< priority class (from the tenant's index)
  int item = 0;             ///< work-item index (Zipf-skewed)
};

/// A Zipf(s) sampler over {0, ..., n-1} via its precomputed CDF: rank r is
/// drawn with probability proportional to 1/(r+1)^s. Deterministic given
/// the caller's Rng.
class ZipfSampler {
 public:
  /// `n` must be >= 1 and `s` > 0 (asserted by the generator's Validate).
  ZipfSampler(int n, double s);
  int Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
};

/// The modulated arrival rate at deployment time `t` (requests/second):
/// base_rate × diurnal(t) × burst(t). Exposed for tests and for benches
/// that want to report the offered-load curve.
double ArrivalRateAt(const TrafficOptions& opts, double t);

/// Generates the arrival trace for `num_items` distinct work items:
/// non-homogeneous Poisson arrivals over [0, duration) by thinning at the
/// peak rate, each arrival assigned a Zipf tenant and Zipf item. Events
/// are strictly ordered by time. Deterministic in (opts, num_items).
[[nodiscard]] Result<std::vector<TrafficEvent>> GenerateTraffic(
    const TrafficOptions& opts, int num_items);

}  // namespace intellisphere::traffic

#endif  // INTELLISPHERE_TRAFFIC_GENERATOR_H_
