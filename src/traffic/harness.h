// The closed-loop traffic harness (DESIGN.md §17): replays a generated
// arrival trace against a federation facade — planner → (admission) →
// serving → cache → models — on the simulated deployment clock, and
// accounts for what the overload machinery actually delivered: per-tenant
// wall-latency percentiles vs SLO, availability over non-shed traffic,
// shed/degraded fractions, and planning *regret* against an exhaustive
// oracle that executes every placement on the simulated engines.
//
// The harness never calls ExecuteBest / LogActual: feeding actuals back
// would bump the model epoch and invalidate the serving cache mid-run,
// conflating lifecycle effects with admission effects. Lifecycle pressure
// is exercised separately (tests/admission_test.cc).

#ifndef INTELLISPHERE_TRAFFIC_HARNESS_H_
#define INTELLISPHERE_TRAFFIC_HARNESS_H_

#include <map>
#include <string>
#include <vector>

#include "federation/intellisphere.h"
#include "traffic/generator.h"
#include "util/status.h"

namespace intellisphere::traffic {

/// One distinct query shape in the workload: an aggregation over a
/// registered table (the paper's GROUP-BY benchmark operator).
struct WorkItem {
  std::string table;
  std::string group_column;
  int num_aggregates = 1;
};

/// Ground truth for one work item: the *observed* cost of every placement,
/// measured by executing the operator on each candidate's simulated engine
/// (the master engine's analytic model for Teradata), plus the QueryGrid
/// transfer the planner charged. `oracle_seconds` is the cheapest.
struct ItemTruth {
  std::map<std::string, double> total_seconds;  ///< by system name
  double oracle_seconds = 0.0;
};

/// Per-tenant accounting over the run. Latency percentiles are
/// nearest-rank over *answered* requests only (shed requests are refusals,
/// not latencies).
struct TenantTrafficStats {
  std::string tenant;
  bool background = false;
  int64_t arrivals = 0;
  int64_t answered = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  bool slo_violated = false;  ///< p99_us > TrafficOptions::slo_p99_us
};

/// The harness's verdict on one run.
struct TrafficReport {
  int64_t arrivals = 0;
  int64_t answered_full = 0;      ///< plan ok, no degradation provenance
  int64_t answered_degraded = 0;  ///< plan ok, some option fell back
  int64_t shed_load = 0;          ///< ResourceExhausted from admission
  int64_t shed_deadline = 0;      ///< DeadlineExceeded (predicted or expired)
  int64_t planner_errors = 0;     ///< any other planning failure
  /// answered / (arrivals - shed): sheds are deliberate refusals under the
  /// overload contract; only unexplained planner errors count against
  /// availability. 1.0 when nothing was admitted.
  double availability = 1.0;
  double shed_fraction = 0.0;      ///< (shed_load + shed_deadline) / arrivals
  double degraded_fraction = 0.0;  ///< answered_degraded / arrivals
  /// Wall-latency percentiles over all answered requests, microseconds.
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Planning regret over answered requests with ground truth: the chosen
  /// placement's observed cost vs the oracle's best, relative. 0 = the
  /// planner always picked the truly cheapest placement.
  double mean_regret = 0.0;
  double max_regret = 0.0;
  int64_t regret_samples = 0;
  int64_t slo_violations = 0;  ///< tenants whose answered p99 missed SLO
  std::vector<TenantTrafficStats> tenants;
};

/// Nearest-rank percentile (q in [0, 1]) of an unsorted sample; 0 when
/// empty. Exposed for tests.
double Percentile(std::vector<double> samples, double q);

/// Executes every placement of every work item once on the simulated
/// engines to build the regret oracle. Call this *before* attaching an
/// admission controller (the probe plans flow through whatever serving
/// path is attached, and must not charge the admission queue). Errors if
/// any item fails to plan or any placement fails to execute.
[[nodiscard]] Result<std::vector<ItemTruth>> ComputeOracle(
    fed::IntelliSphere* sphere, const std::vector<WorkItem>& items);

/// Replays the generated trace for (opts, items) against the facade: for
/// each arrival, plans the item's aggregation with an EstimateContext
/// carrying {now = arrival time, tenant, priority class, absolute
/// deadline}, classifies the outcome by status code, and measures the
/// planning wall latency. `truth` may be empty (regret reporting is then
/// skipped); otherwise it must be ComputeOracle's output for `items`.
[[nodiscard]] Result<TrafficReport> RunTraffic(
    const fed::IntelliSphere& sphere, const std::vector<WorkItem>& items,
    const std::vector<ItemTruth>& truth, const TrafficOptions& opts);

}  // namespace intellisphere::traffic

#endif  // INTELLISPHERE_TRAFFIC_HARNESS_H_
