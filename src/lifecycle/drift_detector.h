// Per-(system, logical-operator) drift detection over a rolling window of
// relative estimation errors (DESIGN.md §16). Two independent signals can
// declare drift once the window holds enough samples:
//
//   - the mean relative error |estimate - actual| / max(|actual|, eps)
//     over the window exceeds `lifecycle.drift.threshold`, or
//   - the fraction of window observations whose features fell outside the
//     model's trained range (the paper's range-metadata signal, computed
//     by the manager via TrainingMetadata::PivotDimensions) reaches
//     `lifecycle.drift.out_of_range_fraction`.
//
// The detector itself is a plain single-threaded value type: the
// LifecycleManager owns one per (system, operator type) under its own
// mutex. Non-finite error observations (NaN/Inf from degenerate actuals)
// are rejected and counted, never mixed into the window.

#ifndef INTELLISPHERE_LIFECYCLE_DRIFT_DETECTOR_H_
#define INTELLISPHERE_LIFECYCLE_DRIFT_DETECTOR_H_

#include <cstdint>
#include <deque>

#include "util/properties.h"
#include "util/status.h"

namespace intellisphere::lifecycle {

/// Rolling-window length, in accepted observations (>= 1).
inline constexpr char kDriftWindowKey[] = "lifecycle.drift.window";
/// Mean relative error above which the window signals drift (> 0).
inline constexpr char kDriftThresholdKey[] = "lifecycle.drift.threshold";
/// Accepted observations required before the detector may fire (>= 1;
/// values above the window length are clamped down to it, so a window
/// shorter than min_samples still fires once full).
inline constexpr char kDriftMinSamplesKey[] = "lifecycle.drift.min_samples";
/// Fraction of window observations out of the trained range that alone
/// signals drift (in (0, 1]).
inline constexpr char kDriftOutOfRangeFractionKey[] =
    "lifecycle.drift.out_of_range_fraction";

struct DriftOptions {
  int window = 64;
  double threshold = 0.25;
  int min_samples = 16;
  double out_of_range_fraction = 0.5;

  /// Reads any `lifecycle.drift.*` keys present; InvalidArgument on
  /// out-of-domain values.
  [[nodiscard]] static Result<DriftOptions> FromProperties(
      const Properties& props);
};

/// |estimated - actual| scaled by max(|actual|, eps). Returns NaN when
/// either input is non-finite, so degenerate executions are rejected by
/// Observe instead of poisoning the window.
[[nodiscard]] double RelativeError(double estimated_seconds,
                                   double actual_seconds);

/// Point-in-time detector state (see State()).
struct DriftState {
  /// Lifetime accepted observations (not capped by the window).
  int64_t accepted = 0;
  /// Lifetime observations rejected for non-finite error.
  int64_t rejected_nonfinite = 0;
  /// Observations currently retained (<= window).
  int window_size = 0;
  double mean_relative_error = 0.0;
  double out_of_range_fraction = 0.0;
  bool drifted = false;
  /// "" | "relative_error" | "out_of_range" — the signal that fired.
  const char* reason = "";
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions opts);

  /// Feeds one execution observation. Non-finite `relative_error` is
  /// rejected (counted in rejected_nonfinite).
  void Observe(double relative_error, bool out_of_range);

  /// Evaluates the drift rule over the current window. The mean is
  /// recomputed from the retained observations on every call, so the
  /// verdict is deterministic and free of accumulation error.
  [[nodiscard]] DriftState State() const;

  /// Clears the window and the lifetime counters — called after a model
  /// swap (the new model starts with a clean slate) and after a shadow
  /// reject (a fresh window of evidence is required before retrying).
  void Reset();

  const DriftOptions& options() const { return opts_; }

 private:
  struct Observation {
    double relative_error = 0.0;
    bool out_of_range = false;
  };

  DriftOptions opts_;
  std::deque<Observation> window_;
  int64_t accepted_ = 0;
  int64_t rejected_nonfinite_ = 0;
};

}  // namespace intellisphere::lifecycle

#endif  // INTELLISPHERE_LIFECYCLE_DRIFT_DETECTOR_H_
