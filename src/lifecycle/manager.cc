#include "lifecycle/manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/json.h"

namespace intellisphere::lifecycle {

namespace {

/// Properties prefix the retrain snapshot is serialized under. Internal
/// plumbing, not a configuration key.
constexpr char kSnapshotPrefix[] = "model";

/// Mean relative error of `models` estimates over the shadow records.
/// Returns an error when the batched forward pass fails; NaN when any
/// individual error is non-finite (rejected by the acceptance rule).
Result<double> ShadowError(const core::LogicalOpModel& model,
                           const std::vector<std::vector<double>>& features,
                           const std::vector<double>& actuals) {
  std::vector<core::LogicalOpEstimate> estimates;
  ISPHERE_RETURN_NOT_OK(model.EstimateBatch(features, &estimates));
  double sum = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    sum += RelativeError(estimates[i].seconds, actuals[i]);
  }
  if (estimates.empty()) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(estimates.size());
}

}  // namespace

bool ShadowAccepts(double candidate_error, double incumbent_error,
                   double min_improvement) {
  if (!std::isfinite(candidate_error)) return false;
  return candidate_error < incumbent_error * (1.0 - min_improvement);
}

Result<LifecycleOptions> LifecycleOptions::FromProperties(
    const Properties& props) {
  LifecycleOptions opts;
  if (props.Contains(kIngestCapacityKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.ingest_capacity,
                             props.GetInt(kIngestCapacityKey));
    if (opts.ingest_capacity < 1) {
      return Status::InvalidArgument(
          "lifecycle.ingest.capacity must be >= 1");
    }
  }
  ISPHERE_ASSIGN_OR_RETURN(opts.drift, DriftOptions::FromProperties(props));
  if (props.Contains(kRetrainWindowKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t window,
                             props.GetInt(kRetrainWindowKey));
    if (window < 2) {
      return Status::InvalidArgument(
          "lifecycle.retrain.window must be >= 2");
    }
    opts.retrain_window = static_cast<int>(window);
  }
  if (props.Contains(kShadowFractionKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.shadow_fraction,
                             props.GetDouble(kShadowFractionKey));
    if (!(opts.shadow_fraction > 0.0) || !(opts.shadow_fraction < 1.0)) {
      return Status::InvalidArgument(
          "lifecycle.shadow.fraction must be in (0, 1)");
    }
  }
  if (props.Contains(kShadowMinImprovementKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.shadow_min_improvement,
                             props.GetDouble(kShadowMinImprovementKey));
    if (opts.shadow_min_improvement < 0.0) {
      return Status::InvalidArgument(
          "lifecycle.shadow.min_improvement must be >= 0");
    }
  }
  return opts;
}

LifecycleManager::LifecycleManager(core::CostEstimator* estimator,
                                   ThreadPool* pool, LifecycleOptions opts)
    : estimator_(estimator),
      pool_(pool),
      opts_(opts),
      metrics_(opts.metrics != nullptr ? opts.metrics
                                       : &MetricsRegistry::Global()),
      drift_detected_(metrics_->GetCounter("lifecycle.drift.detected")),
      retrain_started_(metrics_->GetCounter("lifecycle.retrain.started")),
      retrain_completed_(metrics_->GetCounter("lifecycle.retrain.completed")),
      retrain_failed_(metrics_->GetCounter("lifecycle.retrain.failed")),
      retrain_deferred_(metrics_->GetCounter("lifecycle.retrain.deferred")),
      retrain_yielded_(metrics_->GetCounter("lifecycle.retrain.yielded")),
      shadow_accepted_(metrics_->GetCounter("lifecycle.shadow.accepted")),
      shadow_rejected_(metrics_->GetCounter("lifecycle.shadow.rejected")),
      swap_applied_(metrics_->GetCounter("lifecycle.swap.applied")),
      queue_(opts.ingest_capacity, metrics_) {}

LifecycleManager::~LifecycleManager() {
  std::vector<std::future<void>> futures;
  {
    MutexLock lock(&mu_);
    futures = std::move(retrain_futures_);
  }
  for (std::future<void>& f : futures) {
    if (f.valid()) f.get();
  }
}

void LifecycleManager::Record(const std::string& system,
                              const rel::SqlOperator& op,
                              double estimated_seconds, double actual_seconds,
                              double now) {
  ExecutionRecord record;
  record.system = system;
  record.op_type = op.type;
  record.features = op.LogicalOpFeatures();
  record.estimated_seconds = estimated_seconds;
  record.actual_seconds = actual_seconds;
  record.now = now;
  queue_.Push(std::move(record));
}

Result<core::HybridEstimate> LifecycleManager::Estimate(
    const std::string& system, const rel::SqlOperator& op,
    const core::EstimateContext& ctx) const {
  ReaderMutexLock lock(&gate_);
  return estimator_->Estimate(system, op, ctx);
}

Result<core::HybridEstimate> LifecycleManager::Estimate(
    const serving::EstimationService& service,
    const serving::EstimateRequest& request,
    const core::EstimateContext& ctx) const {
  ReaderMutexLock lock(&gate_);
  return service.Estimate(request, ctx);
}

Result<core::HybridEstimate> LifecycleManager::Estimate(
    const serving::AdmissionController& admission,
    const serving::EstimateRequest& request,
    const core::EstimateContext& ctx) const {
  // Lifecycle probes are background-class by definition; a caller-set
  // tenant survives, the priority does not.
  core::EstimateContext background = ctx;
  background.priority = core::RequestPriority::kBackground;
  ReaderMutexLock lock(&gate_);
  return admission.Estimate(request, background);
}

void LifecycleManager::IngestRecords(std::vector<ExecutionRecord> records) {
  if (records.empty()) return;

  // Pass 1 (shared gate): the range-metadata signal — does the record's
  // feature row fall outside the live model's trained range?
  std::vector<bool> routable(records.size(), false);
  std::vector<bool> out_of_range(records.size(), false);
  {
    ReaderMutexLock lock(&gate_);
    for (size_t i = 0; i < records.size(); ++i) {
      const ExecutionRecord& rec = records[i];
      Result<const core::CostingProfile*> profile =
          estimator_->GetProfile(rec.system);
      if (!profile.ok() || !profile.value()->has_logical_model(rec.op_type)) {
        continue;  // Formula-served operators have nothing to retrain.
      }
      Result<const core::LogicalOpModel*> model =
          profile.value()->logical_model(rec.op_type);
      if (!model.ok()) continue;
      routable[i] = true;
      Result<std::vector<size_t>> pivots =
          model.value()->metadata().PivotDimensions(
              rec.features, model.value()->options().beta);
      out_of_range[i] = pivots.ok() && !pivots.value().empty();
    }
  }

  // Pass 2 (mu_): detector windows and the retained retrain rings.
  MutexLock lock(&mu_);
  for (size_t i = 0; i < records.size(); ++i) {
    if (!routable[i]) continue;
    ExecutionRecord& rec = records[i];
    Key key{rec.system, rec.op_type};
    auto it = detectors_.try_emplace(key, DriftDetector(opts_.drift)).first;
    it->second.Observe(
        RelativeError(rec.estimated_seconds, rec.actual_seconds),
        out_of_range[i]);
    std::deque<ExecutionRecord>& ring = recent_[key];
    while (static_cast<int>(ring.size()) >= opts_.retrain_window) {
      ring.pop_front();
    }
    ring.push_back(std::move(rec));
  }
}

Result<LifecycleManager::RetrainInput> LifecycleManager::PrepareRetrain(
    const Key& key, double now) {
  RetrainInput input;
  input.key = key;
  input.now = now;
  {
    MutexLock lock(&mu_);
    if (in_flight_.count(key) != 0) {
      return Status::FailedPrecondition("retrain already in flight for " +
                                        key.first);
    }
    auto it = recent_.find(key);
    if (it == recent_.end() || it->second.empty()) {
      return Status::FailedPrecondition("no retained executions for " +
                                        key.first);
    }
    input.records.assign(it->second.begin(), it->second.end());
  }
  {
    ReaderMutexLock lock(&gate_);
    ISPHERE_ASSIGN_OR_RETURN(const core::CostingProfile* profile,
                             estimator_->GetProfile(key.first));
    ISPHERE_ASSIGN_OR_RETURN(const core::LogicalOpModel* model,
                             profile->logical_model(key.second));
    model->Save(kSnapshotPrefix, &input.snapshot);
  }
  {
    MutexLock lock(&mu_);
    in_flight_.insert(key);
    ++retrains_started_total_;
  }
  retrain_started_->Increment();
  return input;
}

LifecycleManager::FinishedRetrain LifecycleManager::RunRetrain(
    RetrainInput input) const {
  FinishedRetrain finished;
  finished.key = input.key;
  RetrainOutcome& outcome = finished.outcome;
  outcome.system = input.key.first;
  outcome.op_type = input.key.second;

  TraceSpan span(opts_.trace, "lifecycle.retrain");
  span.SetString("system", outcome.system)
      .SetString("operator", rel::OperatorTypeName(outcome.op_type))
      .SetInt("records", static_cast<int64_t>(input.records.size()))
      .SetDouble("now", input.now);

  // Clone the incumbent twice from the snapshot: one copy becomes the
  // candidate, the other scores the incumbent side of the shadow eval with
  // weights bit-identical to what was serving at snapshot time.
  Result<core::LogicalOpModel> candidate =
      core::LogicalOpModel::Load(kSnapshotPrefix, input.snapshot);
  Result<core::LogicalOpModel> incumbent =
      core::LogicalOpModel::Load(kSnapshotPrefix, input.snapshot);
  if (!candidate.ok() || !incumbent.ok()) {
    outcome.reject_reason = "clone_failed";
    finished.candidate = candidate.ok() ? incumbent.status()
                                        : candidate.status();
    span.SetBool("swapped", false).SetString("reject_reason",
                                             outcome.reject_reason);
    return finished;
  }

  // Newest-fraction holdout: retrain on the older records, shadow-score on
  // the newest ones. With a single record the two sets overlap (the
  // acceptance rule still guards against a degenerate candidate).
  const int n = static_cast<int>(input.records.size());
  int shadow_n = static_cast<int>(
      std::llround(opts_.shadow_fraction * static_cast<double>(n)));
  shadow_n = std::clamp(shadow_n, 1, n);
  int train_n = n - shadow_n;
  const int train_begin = 0;
  const int train_end = train_n > 0 ? train_n : n;
  const int shadow_begin = n - shadow_n;
  outcome.train_records = train_end - train_begin;
  outcome.shadow_records = shadow_n;

  for (int i = train_begin; i < train_end; ++i) {
    Status logged = candidate.value().LogExecution(
        input.records[i].features, input.records[i].actual_seconds);
    if (!logged.ok()) {
      outcome.reject_reason = "log_failed";
      finished.candidate = logged;
      span.SetBool("swapped", false).SetString("reject_reason",
                                               outcome.reject_reason);
      return finished;
    }
  }
  // Re-fit the remedy combining weight over the replayed log (Table 1);
  // FailedPrecondition just means no remedy execution was replayed.
  Result<double> alpha = candidate.value().AdjustAlpha();
  span.SetBool("alpha_refit", alpha.ok());
  Status tuned = candidate.value().OfflineTune();
  if (!tuned.ok()) {
    outcome.reject_reason = "tune_failed";
    finished.candidate = tuned;
    span.SetBool("swapped", false).SetString("reject_reason",
                                             outcome.reject_reason);
    return finished;
  }

  {
    TraceSpan shadow_span = span.Child("lifecycle.shadow");
    std::vector<std::vector<double>> features;
    std::vector<double> actuals;
    features.reserve(shadow_n);
    actuals.reserve(shadow_n);
    for (int i = shadow_begin; i < n; ++i) {
      features.push_back(input.records[i].features);
      actuals.push_back(input.records[i].actual_seconds);
    }
    Result<double> candidate_error =
        ShadowError(candidate.value(), features, actuals);
    Result<double> incumbent_error =
        ShadowError(incumbent.value(), features, actuals);
    if (!candidate_error.ok() || !incumbent_error.ok() ||
        !std::isfinite(candidate_error.value())) {
      outcome.reject_reason = "shadow_failed";
      shadow_span.SetBool("accepted", false)
          .SetString("reject_reason", outcome.reject_reason);
      finished.candidate = std::move(candidate);
      span.SetBool("swapped", false).SetString("reject_reason",
                                               outcome.reject_reason);
      return finished;
    }
    outcome.candidate_error = candidate_error.value();
    outcome.incumbent_error = incumbent_error.value();

    // Acceptance rule: the candidate must strictly beat the incumbent by
    // the configured margin — a tie keeps the devil we know.
    finished.accepted =
        ShadowAccepts(outcome.candidate_error, outcome.incumbent_error,
                      opts_.shadow_min_improvement);
    if (!finished.accepted) {
      outcome.reject_reason =
          outcome.candidate_error == outcome.incumbent_error
              ? "tie"
              : "no_improvement";
    }
    shadow_span.SetInt("records", shadow_n)
        .SetDouble("candidate_error", outcome.candidate_error)
        .SetDouble("incumbent_error", outcome.incumbent_error)
        .SetBool("accepted", finished.accepted)
        .SetString("reject_reason", outcome.reject_reason);
  }

  finished.candidate = std::move(candidate);
  span.SetBool("swapped", finished.accepted)
      .SetString("reject_reason", outcome.reject_reason)
      .SetDouble("candidate_error", outcome.candidate_error)
      .SetDouble("incumbent_error", outcome.incumbent_error);
  return finished;
}

RetrainOutcome LifecycleManager::ApplyFinished(FinishedRetrain finished) {
  RetrainOutcome& outcome = finished.outcome;
  bool swapped = false;
  if (finished.accepted && finished.candidate.ok()) {
    // The only exclusive section in the whole lifecycle: move the tuned
    // candidate in. GetProfileMutable bumps the model epoch, so every
    // cached pre-swap estimate is stale the moment the gate drops
    // (DESIGN.md §11).
    WriterMutexLock lock(&gate_);
    Result<core::CostingProfile*> profile =
        estimator_->GetProfileMutable(outcome.system);
    if (profile.ok()) {
      Result<core::LogicalOpModel*> model =
          profile.value()->logical_model_mutable(outcome.op_type);
      if (model.ok()) {
        *model.value() = std::move(finished.candidate).value();
        swapped = true;
      }
    }
    if (!swapped) outcome.reject_reason = "swap_failed";
  }
  outcome.swapped = swapped;
  outcome.epoch_after = estimator_->model_epoch();

  const bool failed = !outcome.reject_reason.empty() &&
                      outcome.reject_reason != "tie" &&
                      outcome.reject_reason != "no_improvement";
  {
    MutexLock lock(&mu_);
    ++retrains_completed_total_;
    if (swapped) {
      ++shadow_accepted_total_;
      ++swaps_applied_total_;
    } else if (failed) {
      ++retrains_failed_total_;
    } else {
      ++shadow_rejected_total_;
    }
    // Either way the episode is over: the swapped-in model starts clean,
    // and a rejected candidate must re-earn a full window of evidence.
    auto det = detectors_.find(finished.key);
    if (det != detectors_.end()) det->second.Reset();
    drift_reported_.erase(finished.key);
    in_flight_.erase(finished.key);
  }
  retrain_completed_->Increment();
  if (swapped) {
    shadow_accepted_->Increment();
    swap_applied_->Increment();
  } else if (failed) {
    retrain_failed_->Increment();
  } else {
    shadow_rejected_->Increment();
  }
  return outcome;
}

Status LifecycleManager::Tick(double now) {
  IngestRecords(queue_.Drain());

  // Apply retrains that finished since the last tick.
  std::vector<FinishedRetrain> finished;
  {
    MutexLock lock(&mu_);
    finished = std::move(pending_);
    pending_.clear();
  }
  for (FinishedRetrain& f : finished) {
    ApplyFinished(std::move(f));
  }

  // Launch a background retrain for every drifted key without one.
  std::vector<Key> to_launch;
  {
    MutexLock lock(&mu_);
    for (auto& [key, detector] : detectors_) {
      DriftState state = detector.State();
      if (!state.drifted) continue;
      if (drift_reported_.insert(key).second) {
        ++drift_detected_total_;
        drift_detected_->Increment();
      }
      if (in_flight_.count(key) != 0) continue;
      if (opts_.health != nullptr && opts_.health->IsOpen(key.first, now)) {
        ++retrains_deferred_total_;
        retrain_deferred_->Increment();
        continue;
      }
      // Priority yield (DESIGN.md §17): retrains are background work; the
      // serving layer under queue pressure keeps its capacity for
      // foreground planners. Drift state persists, so the launch happens
      // on the first uncongested tick.
      if (opts_.admission != nullptr &&
          opts_.admission->ShouldYieldBackground(now)) {
        ++retrains_yielded_total_;
        retrain_yielded_->Increment();
        continue;
      }
      to_launch.push_back(key);
    }
  }
  for (const Key& key : to_launch) {
    ISPHERE_ASSIGN_OR_RETURN(RetrainInput input, PrepareRetrain(key, now));
    std::future<void> done =
        pool_->Submit([this, input = std::move(input)]() mutable {
          FinishedRetrain result = RunRetrain(std::move(input));
          MutexLock lock(&mu_);
          pending_.push_back(std::move(result));
        });
    MutexLock lock(&mu_);
    retrain_futures_.push_back(std::move(done));
  }
  return Status::OK();
}

Result<RetrainOutcome> LifecycleManager::RetrainNow(const std::string& system,
                                                    rel::OperatorType type,
                                                    double now) {
  ISPHERE_ASSIGN_OR_RETURN(RetrainInput input,
                           PrepareRetrain({system, type}, now));
  return ApplyFinished(RunRetrain(std::move(input)));
}

LifecycleStats LifecycleManager::Stats() const {
  LifecycleStats stats;
  stats.ingest = queue_.Stats();
  MutexLock lock(&mu_);
  stats.drift_detected = drift_detected_total_;
  stats.retrains_started = retrains_started_total_;
  stats.retrains_completed = retrains_completed_total_;
  stats.retrains_failed = retrains_failed_total_;
  stats.retrains_deferred = retrains_deferred_total_;
  stats.retrains_yielded = retrains_yielded_total_;
  stats.shadow_accepted = shadow_accepted_total_;
  stats.shadow_rejected = shadow_rejected_total_;
  stats.swaps_applied = swaps_applied_total_;
  stats.in_flight = static_cast<int64_t>(in_flight_.size());
  return stats;
}

std::string LifecycleManager::ExplainJson() const {
  LifecycleStats stats = Stats();
  std::string out = "{\n  \"lifecycle\": {\n";
  out += "    \"epoch\": " + std::to_string(model_epoch()) + ",\n";
  out += "    \"ingest\": {\"capacity\": " +
         std::to_string(stats.ingest.capacity) +
         ", \"size\": " + std::to_string(stats.ingest.size) +
         ", \"pushed\": " + std::to_string(stats.ingest.pushed) +
         ", \"dropped\": " + std::to_string(stats.ingest.dropped) +
         ", \"drained\": " + std::to_string(stats.ingest.drained) + "},\n";
  out += "    \"drift\": {\"window\": " + std::to_string(opts_.drift.window) +
         ", \"threshold\": " + JsonNumberShort(opts_.drift.threshold) +
         ", \"min_samples\": " + std::to_string(opts_.drift.min_samples) +
         ", \"out_of_range_fraction\": " +
         JsonNumberShort(opts_.drift.out_of_range_fraction) +
         ", \"detected\": " + std::to_string(stats.drift_detected) + "},\n";
  out += "    \"retrain\": {\"window\": " +
         std::to_string(opts_.retrain_window) +
         ", \"started\": " + std::to_string(stats.retrains_started) +
         ", \"completed\": " + std::to_string(stats.retrains_completed) +
         ", \"failed\": " + std::to_string(stats.retrains_failed) +
         ", \"deferred\": " + std::to_string(stats.retrains_deferred) +
         ", \"yielded\": " + std::to_string(stats.retrains_yielded) +
         ", \"in_flight\": " + std::to_string(stats.in_flight) + "},\n";
  out += "    \"shadow\": {\"fraction\": " +
         JsonNumberShort(opts_.shadow_fraction) +
         ", \"min_improvement\": " +
         JsonNumberShort(opts_.shadow_min_improvement) +
         ", \"accepted\": " + std::to_string(stats.shadow_accepted) +
         ", \"rejected\": " + std::to_string(stats.shadow_rejected) + "},\n";
  out += "    \"swaps\": " + std::to_string(stats.swaps_applied) + ",\n";
  out += "    \"detectors\": [";
  {
    MutexLock lock(&mu_);
    bool first = true;
    for (const auto& [key, detector] : detectors_) {
      DriftState state = detector.State();
      out += first ? "\n" : ",\n";
      first = false;
      out += "      {\"system\": \"" + JsonEscape(key.first) +
             "\", \"operator\": \"" + rel::OperatorTypeName(key.second) +
             "\", \"window_size\": " + std::to_string(state.window_size) +
             ", \"accepted\": " + std::to_string(state.accepted) +
             ", \"rejected_nonfinite\": " +
             std::to_string(state.rejected_nonfinite) +
             ", \"mean_relative_error\": " +
             JsonNumberShort(state.mean_relative_error) +
             ", \"out_of_range_fraction\": " +
             JsonNumberShort(state.out_of_range_fraction) +
             ", \"drifted\": " + (state.drifted ? "true" : "false") +
             ", \"reason\": \"" + state.reason + "\"}";
    }
    if (!first) out += "\n    ";
  }
  out += "]\n  }\n}\n";
  return out;
}

}  // namespace intellisphere::lifecycle
