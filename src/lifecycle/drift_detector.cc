#include "lifecycle/drift_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace intellisphere::lifecycle {

Result<DriftOptions> DriftOptions::FromProperties(const Properties& props) {
  DriftOptions opts;
  if (props.Contains(kDriftWindowKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t window, props.GetInt(kDriftWindowKey));
    if (window < 1) {
      return Status::InvalidArgument("lifecycle.drift.window must be >= 1");
    }
    opts.window = static_cast<int>(window);
  }
  if (props.Contains(kDriftThresholdKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.threshold,
                             props.GetDouble(kDriftThresholdKey));
    if (!(opts.threshold > 0.0)) {
      return Status::InvalidArgument(
          "lifecycle.drift.threshold must be > 0");
    }
  }
  if (props.Contains(kDriftMinSamplesKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t min_samples,
                             props.GetInt(kDriftMinSamplesKey));
    if (min_samples < 1) {
      return Status::InvalidArgument(
          "lifecycle.drift.min_samples must be >= 1");
    }
    opts.min_samples = static_cast<int>(min_samples);
  }
  if (props.Contains(kDriftOutOfRangeFractionKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.out_of_range_fraction,
                             props.GetDouble(kDriftOutOfRangeFractionKey));
    if (!(opts.out_of_range_fraction > 0.0) ||
        opts.out_of_range_fraction > 1.0) {
      return Status::InvalidArgument(
          "lifecycle.drift.out_of_range_fraction must be in (0, 1]");
    }
  }
  return opts;
}

double RelativeError(double estimated_seconds, double actual_seconds) {
  if (!std::isfinite(estimated_seconds) || !std::isfinite(actual_seconds)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  constexpr double kEps = 1e-9;
  return std::fabs(estimated_seconds - actual_seconds) /
         std::max(std::fabs(actual_seconds), kEps);
}

DriftDetector::DriftDetector(DriftOptions opts) : opts_(opts) {
  opts_.window = std::max(1, opts_.window);
  opts_.min_samples = std::max(1, opts_.min_samples);
}

void DriftDetector::Observe(double relative_error, bool out_of_range) {
  if (!std::isfinite(relative_error)) {
    ++rejected_nonfinite_;
    return;
  }
  while (static_cast<int>(window_.size()) >= opts_.window) {
    window_.pop_front();
  }
  window_.push_back({relative_error, out_of_range});
  ++accepted_;
}

DriftState DriftDetector::State() const {
  DriftState state;
  state.accepted = accepted_;
  state.rejected_nonfinite = rejected_nonfinite_;
  state.window_size = static_cast<int>(window_.size());
  if (window_.empty()) return state;

  double error_sum = 0.0;
  int out_of_range = 0;
  for (const Observation& obs : window_) {
    error_sum += obs.relative_error;
    if (obs.out_of_range) ++out_of_range;
  }
  state.mean_relative_error = error_sum / static_cast<double>(window_.size());
  state.out_of_range_fraction =
      static_cast<double>(out_of_range) / static_cast<double>(window_.size());

  // A window shorter than min_samples still fires once it is full.
  const int effective_min = std::min(opts_.min_samples, opts_.window);
  if (state.window_size < effective_min) return state;
  if (state.mean_relative_error > opts_.threshold) {
    state.drifted = true;
    state.reason = "relative_error";
  } else if (state.out_of_range_fraction >= opts_.out_of_range_fraction) {
    state.drifted = true;
    state.reason = "out_of_range";
  }
  return state;
}

void DriftDetector::Reset() {
  window_.clear();
  accepted_ = 0;
  rejected_nonfinite_ = 0;
}

}  // namespace intellisphere::lifecycle
