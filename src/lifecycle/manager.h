// The online model-lifecycle driver (DESIGN.md §16, docs/OPERATIONS.md):
// ingest → detect → retrain → shadow → swap, on the deployment clock.
//
//   - Serving threads call Record() after every simulated execution and
//     route their estimate traffic through Estimate(), which holds the
//     model gate shared.
//   - One driver thread calls Tick(now): it drains the ingest queue into
//     the per-(system, operator) drift detectors, launches background
//     retrains on the util::ThreadPool for drifted keys, and applies
//     finished, shadow-accepted candidates with a brief exclusive section
//     plus the epoch bump that invalidates every cached pre-swap value
//     (DESIGN.md §11).
//
// The expensive work — cloning the incumbent, feeding it the recent log,
// OfflineTune, shadow scoring via the batched forward pass — happens on a
// pool worker against private state, so estimate serving never pauses for
// longer than the O(model move) swap itself.

#ifndef INTELLISPHERE_LIFECYCLE_MANAGER_H_
#define INTELLISPHERE_LIFECYCLE_MANAGER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/hybrid.h"
#include "lifecycle/drift_detector.h"
#include "lifecycle/ingest_queue.h"
#include "remote/health.h"
#include "serving/admission.h"
#include "serving/service.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace intellisphere::lifecycle {

/// Recent execution records retained per (system, operator) for retraining
/// and shadow evaluation (>= 2).
inline constexpr char kRetrainWindowKey[] = "lifecycle.retrain.window";
/// Newest fraction of the retained records held out for shadow scoring (in
/// (0, 1)); the candidate retrains on the remainder.
inline constexpr char kShadowFractionKey[] = "lifecycle.shadow.fraction";
/// Relative margin by which the candidate's shadow error must beat the
/// incumbent's to be swapped in (>= 0; ties always reject).
inline constexpr char kShadowMinImprovementKey[] =
    "lifecycle.shadow.min_improvement";

struct LifecycleOptions {
  int64_t ingest_capacity = 4096;
  DriftOptions drift;
  int retrain_window = 256;
  double shadow_fraction = 0.25;
  double shadow_min_improvement = 0.0;

  /// When set, retrains for a system whose breaker is open at Tick time
  /// are deferred (`lifecycle.retrain.deferred`): actuals collected
  /// during an outage are not trustworthy training signal.
  const remote::HealthRegistry* health = nullptr;
  /// When set, Tick consults the admission controller before launching
  /// background retrains: while the serving layer's virtual queue is past
  /// its background threshold, launches are postponed
  /// (`lifecycle.retrain.yielded`) so retrain traffic yields to
  /// foreground planners (DESIGN.md §17). Drift state is retained, so a
  /// yielded retrain launches on the first uncongested tick.
  const serving::AdmissionController* admission = nullptr;
  /// Sink for the `lifecycle.retrain` / `lifecycle.shadow` spans.
  TraceSink* trace = nullptr;
  /// Counter registry; the process-global registry when null.
  MetricsRegistry* metrics = nullptr;

  /// Reads any `lifecycle.*` keys present (ingest, drift, retrain, shadow);
  /// InvalidArgument on out-of-domain values. The wiring pointers (health,
  /// trace, metrics) are not Properties-configurable.
  [[nodiscard]] static Result<LifecycleOptions> FromProperties(
      const Properties& props);
};

/// The shadow acceptance rule (DESIGN.md §16): the candidate's shadow
/// error must be strictly below the incumbent's scaled by the improvement
/// margin — a tie keeps the incumbent, and a non-finite candidate error
/// always rejects.
[[nodiscard]] bool ShadowAccepts(double candidate_error,
                                 double incumbent_error,
                                 double min_improvement);

/// What one retrain attempt did, as reported by RetrainNow and recorded on
/// the `lifecycle.retrain` span.
struct RetrainOutcome {
  std::string system;
  rel::OperatorType op_type = rel::OperatorType::kJoin;
  bool swapped = false;
  /// "" when swapped; otherwise "no_improvement", "tie", or the failing
  /// step ("clone_failed", "log_failed", "tune_failed", "shadow_failed").
  std::string reject_reason;
  double candidate_error = 0.0;
  double incumbent_error = 0.0;
  int train_records = 0;
  int shadow_records = 0;
  /// CostEstimator::model_epoch() after the attempt.
  uint64_t epoch_after = 0;
};

/// Lifetime lifecycle statistics (mirrors the `lifecycle.*` counters).
struct LifecycleStats {
  IngestQueueStats ingest;
  int64_t drift_detected = 0;
  int64_t retrains_started = 0;
  int64_t retrains_completed = 0;
  int64_t retrains_failed = 0;
  int64_t retrains_deferred = 0;
  int64_t retrains_yielded = 0;
  int64_t shadow_accepted = 0;
  int64_t shadow_rejected = 0;
  int64_t swaps_applied = 0;
  int64_t in_flight = 0;
};

/// See the file comment. Thread-safety: Record() and the Estimate()
/// overloads are safe from any thread; Tick() and RetrainNow() must be
/// called from a single driver thread (they may run concurrently with the
/// serving-side calls). The manager must own all mutation of the managed
/// estimator — external RegisterSystem/LogActual/OfflineTune calls racing
/// the lifecycle are a contract violation (see CostEstimator's
/// thread-safety note).
class LifecycleManager {
 public:
  /// `estimator` and `pool` must outlive the manager.
  LifecycleManager(core::CostEstimator* estimator, ThreadPool* pool,
                   LifecycleOptions opts);

  /// Blocks until every in-flight background retrain has finished.
  /// Finished candidates that were never applied by a Tick are discarded.
  ~LifecycleManager();

  LifecycleManager(const LifecycleManager&) = delete;
  LifecycleManager& operator=(const LifecycleManager&) = delete;

  /// Feeds one completed execution into the ingest queue (thread-safe,
  /// never blocks on model state).
  void Record(const std::string& system, const rel::SqlOperator& op,
              double estimated_seconds, double actual_seconds, double now);

  /// Estimate against the managed estimator, holding the model gate shared
  /// so a concurrent swap cannot race the read (DESIGN.md §16).
  [[nodiscard]] Result<core::HybridEstimate> Estimate(
      const std::string& system, const rel::SqlOperator& op,
      const core::EstimateContext& ctx = {}) const;

  /// Same, routed through an EstimationService (cache + policy handling).
  /// The service must wrap the same estimator this manager owns.
  [[nodiscard]] Result<core::HybridEstimate> Estimate(
      const serving::EstimationService& service,
      const serving::EstimateRequest& request,
      const core::EstimateContext& ctx = {}) const;

  /// Same, routed through an admission controller at background priority:
  /// lifecycle estimate probes pass the full overload ladder and are the
  /// first traffic shed under pressure. The controller's service must wrap
  /// the same estimator this manager owns.
  [[nodiscard]] Result<core::HybridEstimate> Estimate(
      const serving::AdmissionController& admission,
      const serving::EstimateRequest& request,
      const core::EstimateContext& ctx = {}) const;

  /// One lifecycle turn at deployment time `now`: drain the ingest queue,
  /// update drift detectors, apply finished retrains (shadow-accepted
  /// candidates swap in under the exclusive gate with an epoch bump),
  /// and launch background retrains for drifted keys.
  [[nodiscard]] Status Tick(double now);

  /// Runs the full clone → log → tune → shadow → (maybe) swap sequence
  /// synchronously on the caller's thread. FailedPrecondition when the
  /// key has no retained records or a background retrain is in flight;
  /// NotFound when the system has no logical model for `type`.
  [[nodiscard]] Result<RetrainOutcome> RetrainNow(const std::string& system,
                                                  rel::OperatorType type,
                                                  double now);

  [[nodiscard]] LifecycleStats Stats() const;

  /// The lifecycle status document (see scripts/check_explain_json.py and
  /// docs/OPERATIONS.md): ingest totals, per-detector windows, retrain /
  /// shadow / swap counters, and the current model epoch.
  [[nodiscard]] std::string ExplainJson() const;

  uint64_t model_epoch() const { return estimator_->model_epoch(); }
  const LifecycleOptions& options() const { return opts_; }

 private:
  using Key = std::pair<std::string, rel::OperatorType>;

  /// Everything a background retrain produces; applied by Tick.
  struct FinishedRetrain {
    Key key;
    Result<core::LogicalOpModel> candidate =
        Status::FailedPrecondition("retrain produced no candidate");
    RetrainOutcome outcome;
    bool accepted = false;
  };

  /// Snapshot taken under the shared gate when a retrain launches.
  struct RetrainInput {
    Key key;
    Properties snapshot;
    std::vector<ExecutionRecord> records;
    double now = 0.0;
  };

  /// Drained-record ingestion: computes the range-metadata signal under
  /// the shared gate, then updates rings and detectors under mu_.
  void IngestRecords(std::vector<ExecutionRecord> records);

  /// Applies one finished retrain: exclusive-gate swap when accepted,
  /// counters and detector reset either way. Returns the settled outcome.
  RetrainOutcome ApplyFinished(FinishedRetrain finished) EXCLUDES(mu_);

  /// The pool-worker body: clone, replay the log, tune, shadow-score.
  [[nodiscard]] FinishedRetrain RunRetrain(RetrainInput input) const;

  /// Snapshots the live model + retained records for `key`; marks the key
  /// in flight. NotFound / FailedPrecondition as for RetrainNow.
  [[nodiscard]] Result<RetrainInput> PrepareRetrain(const Key& key,
                                                    double now);

  core::CostEstimator* const estimator_;
  ThreadPool* const pool_;
  const LifecycleOptions opts_;
  MetricsRegistry* const metrics_;

  Counter* const drift_detected_;
  Counter* const retrain_started_;
  Counter* const retrain_completed_;
  Counter* const retrain_failed_;
  Counter* const retrain_deferred_;
  Counter* const retrain_yielded_;
  Counter* const shadow_accepted_;
  Counter* const shadow_rejected_;
  Counter* const swap_applied_;

  ExecutionLogQueue queue_;

  /// Model gate: estimate traffic and retrain snapshots hold it shared;
  /// the swap holds it exclusive. Never held together with mu_ —
  /// lock order is gate_ strictly before mu_ where both are needed.
  mutable SharedMutex gate_;

  mutable Mutex mu_;
  std::map<Key, DriftDetector> detectors_ GUARDED_BY(mu_);
  /// True once `lifecycle.drift.detected` fired for the current episode;
  /// cleared with the detector on reset.
  std::set<Key> drift_reported_ GUARDED_BY(mu_);
  std::map<Key, std::deque<ExecutionRecord>> recent_ GUARDED_BY(mu_);
  std::set<Key> in_flight_ GUARDED_BY(mu_);
  std::vector<FinishedRetrain> pending_ GUARDED_BY(mu_);
  std::vector<std::future<void>> retrain_futures_ GUARDED_BY(mu_);
  int64_t drift_detected_total_ GUARDED_BY(mu_) = 0;
  int64_t retrains_started_total_ GUARDED_BY(mu_) = 0;
  int64_t retrains_completed_total_ GUARDED_BY(mu_) = 0;
  int64_t retrains_failed_total_ GUARDED_BY(mu_) = 0;
  int64_t retrains_deferred_total_ GUARDED_BY(mu_) = 0;
  int64_t retrains_yielded_total_ GUARDED_BY(mu_) = 0;
  int64_t shadow_accepted_total_ GUARDED_BY(mu_) = 0;
  int64_t shadow_rejected_total_ GUARDED_BY(mu_) = 0;
  int64_t swaps_applied_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace intellisphere::lifecycle

#endif  // INTELLISPHERE_LIFECYCLE_MANAGER_H_
