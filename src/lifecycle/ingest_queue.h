// Bounded, thread-safe execution-log ingest queue — the entry point of the
// online model lifecycle (DESIGN.md §16). Simulated execution pushes one
// ExecutionRecord per completed remote operator; the LifecycleManager
// drains the queue on its deployment-clock Tick. The queue is bounded:
// when a push arrives at capacity the OLDEST record is dropped
// (drop-oldest backpressure) and the `lifecycle.ingest.dropped` counter is
// bumped, so a stalled consumer degrades drift detection gracefully
// instead of growing without bound.

#ifndef INTELLISPHERE_LIFECYCLE_INGEST_QUEUE_H_
#define INTELLISPHERE_LIFECYCLE_INGEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "relational/query.h"
#include "util/runtime_metrics.h"
#include "util/thread_annotations.h"

namespace intellisphere::lifecycle {

/// Capacity of the execution-log ingest queue (records; >= 1).
inline constexpr char kIngestCapacityKey[] = "lifecycle.ingest.capacity";

/// One completed remote execution, as observed by the serving layer: the
/// operator's model features, what was served, what actually happened, and
/// the deployment-clock time of the observation.
struct ExecutionRecord {
  std::string system;
  rel::OperatorType op_type = rel::OperatorType::kJoin;
  std::vector<double> features;
  double estimated_seconds = 0.0;
  double actual_seconds = 0.0;
  /// Deployment clock (core::EstimateContext::now) at execution.
  double now = 0.0;
};

/// Point-in-time queue statistics (counters are lifetime totals).
struct IngestQueueStats {
  int64_t pushed = 0;
  int64_t dropped = 0;
  int64_t drained = 0;
  int64_t size = 0;
  int64_t capacity = 0;
};

/// The bounded MPSC-style ingest queue. Push is safe from any number of
/// producer threads; Drain is typically called by the single lifecycle
/// driver but is itself thread-safe too.
class ExecutionLogQueue {
 public:
  /// `capacity` is clamped up to 1. Drop counters register with `metrics`
  /// (the process-global registry when null).
  explicit ExecutionLogQueue(int64_t capacity,
                             MetricsRegistry* metrics = nullptr);

  ExecutionLogQueue(const ExecutionLogQueue&) = delete;
  ExecutionLogQueue& operator=(const ExecutionLogQueue&) = delete;

  /// Appends a record; at capacity the oldest queued record is dropped
  /// first (`lifecycle.ingest.dropped`).
  void Push(ExecutionRecord record);

  /// Removes and returns every queued record in arrival order.
  [[nodiscard]] std::vector<ExecutionRecord> Drain();

  [[nodiscard]] IngestQueueStats Stats() const;

 private:
  const int64_t capacity_;
  Counter* const pushed_counter_;
  Counter* const dropped_counter_;

  mutable Mutex mu_;
  std::deque<ExecutionRecord> queue_ GUARDED_BY(mu_);
  int64_t pushed_ GUARDED_BY(mu_) = 0;
  int64_t dropped_ GUARDED_BY(mu_) = 0;
  int64_t drained_ GUARDED_BY(mu_) = 0;
};

}  // namespace intellisphere::lifecycle

#endif  // INTELLISPHERE_LIFECYCLE_INGEST_QUEUE_H_
