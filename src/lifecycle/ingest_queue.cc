#include "lifecycle/ingest_queue.h"

#include <algorithm>
#include <utility>

namespace intellisphere::lifecycle {

ExecutionLogQueue::ExecutionLogQueue(int64_t capacity,
                                     MetricsRegistry* metrics)
    : capacity_(std::max<int64_t>(1, capacity)),
      pushed_counter_((metrics != nullptr ? metrics : &MetricsRegistry::Global())
                          ->GetCounter("lifecycle.ingest.pushed")),
      dropped_counter_((metrics != nullptr ? metrics
                                           : &MetricsRegistry::Global())
                           ->GetCounter("lifecycle.ingest.dropped")) {}

void ExecutionLogQueue::Push(ExecutionRecord record) {
  MutexLock lock(&mu_);
  while (static_cast<int64_t>(queue_.size()) >= capacity_) {
    queue_.pop_front();
    ++dropped_;
    dropped_counter_->Increment();
  }
  queue_.push_back(std::move(record));
  ++pushed_;
  pushed_counter_->Increment();
}

std::vector<ExecutionRecord> ExecutionLogQueue::Drain() {
  MutexLock lock(&mu_);
  std::vector<ExecutionRecord> out(std::make_move_iterator(queue_.begin()),
                                   std::make_move_iterator(queue_.end()));
  queue_.clear();
  drained_ += static_cast<int64_t>(out.size());
  return out;
}

IngestQueueStats ExecutionLogQueue::Stats() const {
  MutexLock lock(&mu_);
  IngestQueueStats stats;
  stats.pushed = pushed_;
  stats.dropped = dropped_;
  stats.drained = drained_;
  stats.size = static_cast<int64_t>(queue_.size());
  stats.capacity = capacity_;
  return stats;
}

}  // namespace intellisphere::lifecycle
