// Status / Result error handling, in the style of Arrow and RocksDB.
//
// Library code never throws for anticipated failures; fallible functions
// return Status (void results) or Result<T> (value-or-error).

#ifndef INTELLISPHERE_UTIL_STATUS_H_
#define INTELLISPHERE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace intellisphere {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
  kResourceExhausted,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation); error construction allocates
/// for the message. Use the static factories:
///
///   Status MaybeRegister(...) {
///     if (exists) return Status::AlreadyExists("system 'hive' registered");
///     return Status::OK();
///   }
///
/// The class itself is [[nodiscard]]: any function returning Status by value
/// warns (errors under -Werror) when a caller drops the result. Callers that
/// genuinely want to ignore an outcome must say so with
/// `(void)DoThing();` or keep the status and assert on it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for transient failures a caller may retry (the request might
  /// succeed on another attempt): Unavailable, DeadlineExceeded, and
  /// ResourceExhausted (an overloaded server may admit the retry later).
  /// Permanent errors (InvalidArgument, Unsupported, ...) are not retryable.
  [[nodiscard]] bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kResourceExhausted;
  }

  /// Returns "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-Status result.
///
///   Result<Model> Train(...);
///   auto r = Train(...);
///   if (!r.ok()) return r.status();
///   Model m = std::move(r).value();
///
/// [[nodiscard]] like Status: dropping a Result discards both the value and
/// the error, so the compiler flags it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (error). An OK status is a logic error and
  /// is converted to an Internal error to keep the invariant visible.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK when holding a value, the error otherwise.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  /// Returns the contained value or `fallback` on error.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define ISPHERE_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::intellisphere::Status _st = (expr);      \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define ISPHERE_CONCAT_IMPL(a, b) a##b
#define ISPHERE_CONCAT(a, b) ISPHERE_CONCAT_IMPL(a, b)

#define ISPHERE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

/// Assigns a Result's value to `lhs` or propagates its error status.
#define ISPHERE_ASSIGN_OR_RETURN(lhs, rexpr) \
  ISPHERE_ASSIGN_OR_RETURN_IMPL(ISPHERE_CONCAT(_res_, __LINE__), lhs, rexpr)

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_STATUS_H_
