#include "util/thread_pool.h"

namespace intellisphere {

int HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) {
        // stop_ must be set, or the wait loop would not have exited: drain
        // semantics — workers exit only once the queue is empty.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

uint64_t ThreadPool::DeriveSeed(uint64_t parent_seed, uint64_t task_index) {
  // Stride the parent by the 64-bit golden ratio per task, then apply the
  // splitmix64 finalizer so adjacent indices land far apart.
  uint64_t z = parent_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace intellisphere
