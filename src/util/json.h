// Minimal JSON string helpers shared by the observability exporters
// (runtime_metrics snapshots, federation EXPLAIN output) and the bench
// harnesses. This is a writer only — the repo never parses JSON.

#ifndef INTELLISPHERE_UTIL_JSON_H_
#define INTELLISPHERE_UTIL_JSON_H_

#include <cstdio>
#include <string>

namespace intellisphere {

/// Escapes a string for inclusion inside a JSON string literal (quotes not
/// added by this function).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number with full round-trip precision.
inline std::string JsonNumber(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Formats a double with a fixed number of significant digits — the stable
/// form used in EXPLAIN output and golden tests.
inline std::string JsonNumberShort(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_JSON_H_
