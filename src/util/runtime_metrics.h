// Process-wide runtime metrics: named monotonic counters and fixed-bucket
// latency histograms, with snapshot export in the same shape as the
// BENCH_<name>.json metric entries so bench harnesses can append a served
// model's operational counters next to its latency numbers.
//
// Distinct from util/metrics.h, which holds offline *accuracy* metrics
// (RMSE, fitted lines) for reproducing the paper's figures; this file is
// about what the estimator does at serving time (how often the remedy
// fired, which costing approach was selected, end-to-end estimate latency).
//
// Concurrency: Counter::Increment is a relaxed atomic add — safe from any
// thread, suitable for hot paths. Histogram::Observe takes a mutex (it is
// only reached when the caller opted into timing). Registry lookups lock;
// callers on hot paths should look up once and cache the returned pointer,
// which stays valid for the registry's lifetime.

#ifndef INTELLISPHERE_UTIL_RUNTIME_METRICS_H_
#define INTELLISPHERE_UTIL_RUNTIME_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace intellisphere {

/// A monotonically increasing counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    // lint:relaxed-ok(independent monotonic stat; no other data published)
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const {
    // lint:relaxed-ok(point-in-time stat read; snapshots synchronize via future-get)
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() {
    // lint:relaxed-ok(test-only reset; racing increments may land on either side)
    value_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram. Bucket i counts observations <=
/// upper_bounds[i]; one extra overflow bucket counts the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  /// Cumulative totals since construction (or the last Reset).
  int64_t count() const;
  double sum() const;
  double Mean() const;  ///< 0 when empty
  std::vector<int64_t> bucket_counts() const;  ///< size upper_bounds+1
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  void Reset();

 private:
  const std::vector<double> upper_bounds_;
  mutable Mutex mu_;
  std::vector<int64_t> buckets_ GUARDED_BY(mu_);
  int64_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0.0;
};

/// Default bucket bounds for estimate-latency histograms, in microseconds:
/// 1us .. 100ms in roughly 1-3-10 steps.
std::vector<double> DefaultLatencyBucketsUs();

/// One exported measurement, mirroring the BENCH_<name>.json entry shape.
struct MetricSample {
  std::string name;
  double value = 0.0;
  std::string unit;  ///< "count" for counters, histogram-specific otherwise
};

/// A point-in-time export of a registry. Histograms flatten to
/// <name>.count / <name>.sum / <name>.mean plus one <name>.le.<bound>
/// cumulative entry per bucket (and <name>.le.inf).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  const MetricSample* Find(const std::string& name) const;
  /// Renders the snapshot as a JSON array of {"name","value","unit"}
  /// objects, matching the "metrics" field of BENCH_<name>.json.
  std::string ToJson(const std::string& indent = "") const;
};

/// Owns counters and histograms by name. Get* creates on first use and
/// returns a pointer that stays valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  /// Bounds are fixed on first creation; later calls with a different
  /// bounds argument return the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (instruments stay registered, cached
  /// pointers stay valid). Intended for tests and bench warmup.
  void ResetAll();

  /// The process-wide registry instrumented code defaults to.
  static MetricsRegistry& Global();

 private:
  struct NamedCounter {
    std::string name;
    std::unique_ptr<Counter> counter;
  };
  struct NamedHistogram {
    std::string name;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::vector<NamedCounter> counters_ GUARDED_BY(mu_);
  std::vector<NamedHistogram> histograms_ GUARDED_BY(mu_);
};

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_RUNTIME_METRICS_H_
