#include "util/properties.h"

#include <cstdlib>
#include <sstream>

namespace intellisphere {

namespace {

std::string DoubleToText(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

void Properties::SetString(const std::string& key, std::string value) {
  map_[key] = std::move(value);
}

void Properties::SetDouble(const std::string& key, double value) {
  map_[key] = DoubleToText(value);
}

void Properties::SetInt(const std::string& key, int64_t value) {
  map_[key] = std::to_string(value);
}

void Properties::SetBool(const std::string& key, bool value) {
  map_[key] = value ? "true" : "false";
}

void Properties::SetDoubleList(const std::string& key,
                               const std::vector<double>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += DoubleToText(v[i]);
  }
  map_[key] = std::move(out);
}

bool Properties::Contains(const std::string& key) const {
  return map_.count(key) > 0;
}

Result<std::string> Properties::GetString(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("property '" + key + "'");
  return it->second;
}

Result<double> Properties::GetDouble(const std::string& key) const {
  ISPHERE_ASSIGN_OR_RETURN(std::string text, GetString(key));
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("property '" + key + "' is not a double: " +
                                   text);
  }
  return v;
}

Result<int64_t> Properties::GetInt(const std::string& key) const {
  ISPHERE_ASSIGN_OR_RETURN(std::string text, GetString(key));
  char* end = nullptr;
  int64_t v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("property '" + key + "' is not an int: " +
                                   text);
  }
  return v;
}

Result<bool> Properties::GetBool(const std::string& key) const {
  ISPHERE_ASSIGN_OR_RETURN(std::string text, GetString(key));
  if (text == "true") return true;
  if (text == "false") return false;
  return Status::InvalidArgument("property '" + key + "' is not a bool: " +
                                 text);
}

Result<std::vector<double>> Properties::GetDoubleList(
    const std::string& key) const {
  ISPHERE_ASSIGN_OR_RETURN(std::string text, GetString(key));
  std::vector<double> out;
  if (text.empty()) return out;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    std::string tok = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') {
      return Status::InvalidArgument("property '" + key +
                                     "' has a non-double element: " + tok);
    }
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool Properties::Erase(const std::string& key) { return map_.erase(key) > 0; }

std::string Properties::Serialize() const {
  std::string out;
  for (const auto& [k, v] : map_) {
    out += k;
    out += '=';
    out += v;
    out += '\n';
  }
  return out;
}

Result<Properties> Properties::Parse(const std::string& text) {
  Properties p;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     " has no '=': " + line);
    }
    std::string key = line.substr(0, eq);
    if (key.empty()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     " has an empty key");
    }
    p.map_[key] = line.substr(eq + 1);
  }
  return p;
}

}  // namespace intellisphere
