#include "util/metrics.h"

#include <cmath>

namespace intellisphere {

namespace {

Status CheckPaired(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty()) return Status::InvalidArgument("empty metric input");
  if (a.size() != b.size()) {
    return Status::InvalidArgument("metric input size mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<double> Mean(const std::vector<double>& v) {
  if (v.empty()) return Status::InvalidArgument("mean of empty vector");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

Result<double> Rmse(const std::vector<double>& actual,
                    const std::vector<double>& predicted) {
  ISPHERE_RETURN_NOT_OK(CheckPaired(actual, predicted));
  double ss = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double d = predicted[i] - actual[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(actual.size()));
}

Result<double> RmsePercent(const std::vector<double>& actual,
                           const std::vector<double>& predicted) {
  ISPHERE_ASSIGN_OR_RETURN(double e, Rmse(actual, predicted));
  ISPHERE_ASSIGN_OR_RETURN(double v, Mean(actual));
  if (v == 0.0) return Status::InvalidArgument("zero mean actual cost");
  return e * 100.0 / v;
}

Result<FittedLine> FitLine(const std::vector<double>& x,
                           const std::vector<double>& y) {
  ISPHERE_RETURN_NOT_OK(CheckPaired(x, y));
  if (x.size() < 2) return Status::InvalidArgument("need >= 2 points to fit");
  double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) return Status::InvalidArgument("constant x in line fit");
  FittedLine line;
  line.slope = (n * sxy - sx * sy) / denom;
  line.intercept = (sy - line.slope * sx) / n;
  // R^2 of the fitted line.
  double ybar = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double fit = line.slope * x[i] + line.intercept;
    ss_res += (y[i] - fit) * (y[i] - fit);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  line.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return line;
}

Result<double> RSquared(const std::vector<double>& actual,
                        const std::vector<double>& predicted) {
  ISPHERE_RETURN_NOT_OK(CheckPaired(actual, predicted));
  ISPHERE_ASSIGN_OR_RETURN(double abar, Mean(actual));
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - abar) * (actual[i] - abar);
  }
  if (ss_tot == 0.0) return Status::InvalidArgument("constant actuals");
  return 1.0 - ss_res / ss_tot;
}

Result<double> MeanRelativeError(const std::vector<double>& actual,
                                 const std::vector<double>& predicted) {
  ISPHERE_RETURN_NOT_OK(CheckPaired(actual, predicted));
  double s = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] <= 0.0) {
      return Status::InvalidArgument("non-positive actual in relative error");
    }
    s += std::abs(predicted[i] - actual[i]) / actual[i];
  }
  return s / static_cast<double>(actual.size());
}

}  // namespace intellisphere
