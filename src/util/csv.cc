#include "util/csv.h"

#include <cassert>
#include <cstdio>

namespace intellisphere {

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvTable::AddRow(std::initializer_list<double> values) {
  AddRow(std::vector<double>(values));
}

void CsvTable::AddRow(const std::vector<double>& values) {
  assert(values.size() == header_.size());
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatNumber(v));
  rows_.push_back(std::move(cells));
}

void CsvTable::AddTextRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void CsvTable::Print(std::ostream& os) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
}

}  // namespace intellisphere
