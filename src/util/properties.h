// A flat string key -> string value property map with typed accessors and a
// line-oriented text serialization. Costing profiles (Section 5 of the paper)
// persist their metadata through this.

#ifndef INTELLISPHERE_UTIL_PROPERTIES_H_
#define INTELLISPHERE_UTIL_PROPERTIES_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace intellisphere {

/// Ordered key/value properties with "key=value" line serialization.
///
/// Keys may not contain '=' or '\n'; values may not contain '\n'. Numeric
/// getters return InvalidArgument when the stored text does not parse.
class Properties {
 public:
  void SetString(const std::string& key, std::string value);
  void SetDouble(const std::string& key, double value);
  void SetInt(const std::string& key, int64_t value);
  void SetBool(const std::string& key, bool value);
  /// Stores a vector of doubles as a comma-separated value.
  void SetDoubleList(const std::string& key, const std::vector<double>& v);

  bool Contains(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;
  Result<std::vector<double>> GetDoubleList(const std::string& key) const;

  /// Removes a key; returns whether it existed.
  bool Erase(const std::string& key);

  size_t size() const { return map_.size(); }
  const std::map<std::string, std::string>& map() const { return map_; }

  /// "key=value\n" lines, keys sorted.
  std::string Serialize() const;
  /// Parses the Serialize() format. Blank lines and '#' comments allowed.
  static Result<Properties> Parse(const std::string& text);

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_PROPERTIES_H_
