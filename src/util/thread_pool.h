// Fixed-size worker pool for the offline training pipeline.
//
// The paper's dominant operational cost is the periodic (re)training of the
// per-operator cost models — cross-validated topology sweeps and one network
// per (remote system, operator type). Those tasks are embarrassingly
// parallel AND individually deterministic (each owns its seeded Rng), so the
// pipeline fans them out over this pool and folds results back in submission
// order. Determinism rule: a task must never share an Rng or mutable model
// state with another task; when a task needs randomness of its own, derive
// its seed with ThreadPool::DeriveSeed(parent_seed, task_index) so the seed
// depends only on the task's stable index, never on scheduling.
//
// All concurrency in the library goes through this pool; raw std::thread /
// std::async elsewhere is a lint error (rule no-raw-thread), and the queue
// state is lock-annotated (GUARDED_BY, DESIGN.md §13) so the clang-analyze
// preset proves every access holds mu_.

#ifndef INTELLISPHERE_UTIL_THREAD_POOL_H_
#define INTELLISPHERE_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace intellisphere {

/// Number of concurrent hardware threads; always >= 1 even when the runtime
/// cannot tell.
int HardwareConcurrency();

/// A fixed-size pool of worker threads consuming a FIFO task queue.
///
/// Destruction drains the queue: every task submitted before the destructor
/// runs still executes, then the workers join. Submitting from within a task
/// is allowed; submitting after destruction has begun is not.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped up to 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` for execution and returns the future of its result.
  /// An exception thrown by the task is captured and rethrown from
  /// future.get() on the caller's thread.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(&mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return future;
  }

  /// Derives an independent, reproducible seed for task `task_index` from a
  /// parent seed (splitmix64 finalizer over parent + golden-ratio striding).
  /// The result depends only on (parent_seed, task_index), never on thread
  /// scheduling, so seeded pipelines stay bit-for-bit reproducible at any
  /// pool size.
  static uint64_t DeriveSeed(uint64_t parent_seed, uint64_t task_index);

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(0) .. fn(n-1)` and returns the results in index order. With a
/// null pool (or n <= 1) the calls run inline on the caller's thread in
/// index order — exactly the serial loop — so `jobs = 1` configurations
/// behave identically to pre-pool code. Tasks must not throw when running
/// on a pool with shared captured state; fallible tasks should return
/// Status/Result values instead.
template <typename Fn>
auto RunIndexed(ThreadPool* pool, size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  using R = std::invoke_result_t<Fn&, size_t>;
  std::vector<R> results;
  results.reserve(n);
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) results.push_back(fn(i));
    return results;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(pool->Submit([&fn, i] { return fn(i); }));
  }
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_THREAD_POOL_H_
