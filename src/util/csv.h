// Small CSV table builder used by the benchmark harnesses to print the
// rows/series each paper table and figure reports.

#ifndef INTELLISPHERE_UTIL_CSV_H_
#define INTELLISPHERE_UTIL_CSV_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace intellisphere {

/// Accumulates a header plus rows and streams them as CSV.
///
///   CsvTable t({"record_size_bytes", "avg_time_us"});
///   t.AddRow({40, 1.9});
///   t.Print(std::cout);
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  /// Appends a numeric row; must match the header width.
  void AddRow(std::initializer_list<double> values);
  void AddRow(const std::vector<double>& values);

  /// Appends a row of preformatted cells; must match the header width.
  void AddTextRow(std::vector<std::string> cells);

  size_t row_count() const { return rows_.size(); }

  /// Streams "header\nrow\nrow..." with doubles rendered at 6 significant
  /// digits (trailing zeros trimmed).
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with up to 6 significant digits, trimming trailing
/// zeros ("2.5", "0.0314", "120").
std::string FormatNumber(double v);

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_CSV_H_
