// Seeded random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that simulations, training runs, and benchmarks are reproducible.

#ifndef INTELLISPHERE_UTIL_RNG_H_
#define INTELLISPHERE_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace intellisphere {

/// A reproducible pseudo-random source (Mersenne Twister under the hood).
///
/// Deliberately not thread-safe: components own their Rng or receive one by
/// pointer and are single-threaded per simulation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }

  /// Multiplicative noise factor: max(floor, 1 + N(0, rel_stddev)).
  ///
  /// Used by the cluster simulator to perturb ground-truth costs; the floor
  /// keeps simulated durations positive.
  double NoiseFactor(double rel_stddev, double floor = 0.05) {
    double f = 1.0 + Normal(0.0, rel_stddev);
    return f < floor ? floor : f;
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = n; i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(idx[i - 1], idx[j]);
    }
    return idx;
  }

  /// Derives an independent child generator; useful to give each component a
  /// decorrelated stream from one master seed.
  Rng Fork() { return Rng(gen_()); }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_RNG_H_
