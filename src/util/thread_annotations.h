// Clang thread-safety annotations and the annotated synchronization
// primitives every piece of shared mutable state in the library uses.
//
// The macros expand to Clang's thread-safety attributes when the compiler
// supports them (`-Wthread-safety -Wthread-safety-beta`, wired through the
// `clang-analyze` CMake preset / INTELLISPHERE_THREAD_SAFETY option) and to
// nothing elsewhere, so gcc builds are unaffected. With the analysis on,
// the compiler proves at build time that every access to a GUARDED_BY
// member happens with its mutex held — the interleavings tsan can only
// sample are covered exhaustively, before the code ever runs.
//
// Conventions (DESIGN.md §13):
//   - Library code never touches std::mutex / std::lock_guard /
//     std::unique_lock / std::condition_variable directly; the lint rule
//     `lock-discipline` bans them in src/ outside this header. Use Mutex,
//     MutexLock, SharedMutex (+ Reader/WriterMutexLock), and CondVar
//     instead — they carry the annotations the raw std types lack.
//   - Every mutable member shared across threads is GUARDED_BY its mutex.
//   - NO_THREAD_SAFETY_ANALYSIS is a last resort for code the analysis
//     cannot express (none in the tree today); it requires a comment
//     explaining why and a tsan-covered test.
//
// The macro spellings follow the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so annotations
// read the same here as in that reference.

#ifndef INTELLISPHERE_UTIL_THREAD_ANNOTATIONS_H_
#define INTELLISPHERE_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define ISPHERE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ISPHERE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares that a data member is protected by the given capability
/// (mutex): reads require the mutex held shared or exclusive, writes
/// require it exclusive.
#define GUARDED_BY(x) ISPHERE_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the pointed-to data (not the pointer) is protected.
#define PT_GUARDED_BY(x) ISPHERE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function-level precondition: the caller must hold the capability.
#define REQUIRES(...) \
  ISPHERE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function-level precondition: the caller must NOT hold the capability
/// (guards against self-deadlock on non-reentrant mutexes).
#define EXCLUDES(...) ISPHERE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function-level precondition: the caller must hold the capability at
/// least shared (read access).
#define REQUIRES_SHARED(...) \
  ISPHERE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  ISPHERE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared and holds it on return.
#define ACQUIRE_SHARED(...) \
  ISPHERE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases a held capability.
#define RELEASE(...) \
  ISPHERE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function releases a capability held shared.
#define RELEASE_SHARED(...) \
  ISPHERE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  ISPHERE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Marks a type as a capability (mutexes).
#define CAPABILITY(x) ISPHERE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY ISPHERE_THREAD_ANNOTATION(scoped_lockable)

/// Documents a required lock-acquisition order between two mutexes.
#define ACQUIRED_BEFORE(...) \
  ISPHERE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  ISPHERE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) ISPHERE_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis entirely. Last resort; see the
/// header comment for the policy.
#define NO_THREAD_SAFETY_ANALYSIS \
  ISPHERE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace intellisphere {

/// An annotated exclusive mutex over std::mutex. Non-reentrant; prefer
/// MutexLock for scoped acquisition so the release can never be missed.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  /// True (and the mutex is held) when the lock was free.
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII acquisition of a Mutex for the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// An annotated reader/writer mutex over std::shared_mutex. Used where a
/// long-lived read side (estimate serving) must stay concurrent while a
/// rare writer (the lifecycle model swap) needs a brief exclusive section.
/// Non-reentrant in both modes; prefer the scoped ReaderMutexLock /
/// WriterMutexLock so the release can never be missed.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII shared (read) acquisition of a SharedMutex for the enclosing scope.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (write) acquisition of a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// A condition variable paired with Mutex. Wait atomically releases the
/// (held) mutex and re-acquires it before returning; callers re-check
/// their predicate in a loop, as with std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). The caller must hold
  /// `mu`; it is held again when Wait returns.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release the guard so ownership stays with the caller's
    // MutexLock. std::condition_variable is used (not _any) to keep the
    // fast futex path.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_THREAD_ANNOTATIONS_H_
