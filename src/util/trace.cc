#include "util/trace.h"

#include <algorithm>
#include <cstdio>

namespace intellisphere {

std::string TraceAttribute::ValueToString() const {
  switch (kind) {
    case Kind::kString:
      return string_value;
    case Kind::kInt:
      return std::to_string(int_value);
    case Kind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value);
      return buf;
    }
    case Kind::kBool:
      return bool_value ? "true" : "false";
  }
  return {};
}

const TraceAttribute* TraceSpanRecord::FindAttribute(
    const std::string& key) const {
  for (const auto& attr : attributes) {
    if (attr.key == key) return &attr;
  }
  return nullptr;
}

TraceSpan::TraceSpan(TraceSink* sink, std::string name, int64_t parent_id)
    : sink_(sink) {
  if (sink_ == nullptr) return;
  record_.id = sink_->NextSpanId();
  record_.parent_id = parent_id;
  record_.name = std::move(name);
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : sink_(other.sink_), record_(std::move(other.record_)) {
  other.sink_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    sink_ = other.sink_;
    record_ = std::move(other.record_);
    other.sink_ = nullptr;
  }
  return *this;
}

TraceSpan TraceSpan::Child(std::string name) const {
  return TraceSpan(sink_, std::move(name), record_.id);
}

TraceSpan& TraceSpan::SetString(std::string key, std::string value) {
  if (sink_ == nullptr) return *this;
  TraceAttribute attr;
  attr.key = std::move(key);
  attr.kind = TraceAttribute::Kind::kString;
  attr.string_value = std::move(value);
  record_.attributes.push_back(std::move(attr));
  return *this;
}

TraceSpan& TraceSpan::SetInt(std::string key, int64_t value) {
  if (sink_ == nullptr) return *this;
  TraceAttribute attr;
  attr.key = std::move(key);
  attr.kind = TraceAttribute::Kind::kInt;
  attr.int_value = value;
  record_.attributes.push_back(std::move(attr));
  return *this;
}

TraceSpan& TraceSpan::SetDouble(std::string key, double value) {
  if (sink_ == nullptr) return *this;
  TraceAttribute attr;
  attr.key = std::move(key);
  attr.kind = TraceAttribute::Kind::kDouble;
  attr.double_value = value;
  record_.attributes.push_back(std::move(attr));
  return *this;
}

TraceSpan& TraceSpan::SetBool(std::string key, bool value) {
  if (sink_ == nullptr) return *this;
  TraceAttribute attr;
  attr.key = std::move(key);
  attr.kind = TraceAttribute::Kind::kBool;
  attr.bool_value = value;
  record_.attributes.push_back(std::move(attr));
  return *this;
}

void TraceSpan::End() {
  if (sink_ == nullptr) return;
  TraceSink* sink = sink_;
  sink_ = nullptr;
  sink->OnSpanEnd(record_);
}

void CollectingTraceSink::OnSpanEnd(const TraceSpanRecord& span) {
  MutexLock lock(&mu_);
  spans_.push_back(span);
}

std::vector<TraceSpanRecord> CollectingTraceSink::spans() const {
  std::vector<TraceSpanRecord> out;
  {
    MutexLock lock(&mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpanRecord& a, const TraceSpanRecord& b) {
              return a.id < b.id;
            });
  return out;
}

size_t CollectingTraceSink::size() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

void CollectingTraceSink::Clear() {
  MutexLock lock(&mu_);
  spans_.clear();
}

}  // namespace intellisphere
