// Structured trace spans for estimation observability.
//
// A TraceSpan is an RAII handle: created against an optional TraceSink, it
// accumulates typed key/value attributes and reports itself to the sink
// exactly once when ended (or destroyed). When no sink is attached the span
// is a null handle — construction, attribute setters, and destruction are a
// pointer check each, so instrumented hot paths cost nothing measurable
// with tracing disabled.
//
// Span identity: every span drawn from a sink gets a sink-local id
// (starting at 1, in construction order) and records its parent's id, so a
// consumer can rebuild the span tree regardless of the end-order the sink
// observes (children end before their parents under RAII).
//
// Thread-safety follows the thread-pool conventions (DESIGN.md §9): a
// TraceSpan is owned by one task and never shared; a TraceSink may receive
// OnSpanEnd from several tasks concurrently, so implementations must be
// thread-safe (CollectingTraceSink locks; id allocation is atomic).

#ifndef INTELLISPHERE_UTIL_TRACE_H_
#define INTELLISPHERE_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace intellisphere {

/// One typed key/value pair attached to a span.
struct TraceAttribute {
  enum class Kind { kString, kInt, kDouble, kBool };

  std::string key;
  Kind kind = Kind::kString;
  std::string string_value;
  int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;

  /// Renders the value (not the key) as text, for tests and debug dumps.
  std::string ValueToString() const;
};

/// The immutable record a finished span hands to its sink.
struct TraceSpanRecord {
  int64_t id = 0;         ///< sink-local, 1-based, in construction order
  int64_t parent_id = 0;  ///< 0 = root
  std::string name;
  std::vector<TraceAttribute> attributes;

  /// First attribute with the given key, or nullptr.
  const TraceAttribute* FindAttribute(const std::string& key) const;
};

/// Receives finished spans. Implementations must tolerate concurrent
/// OnSpanEnd calls (spans may end on worker threads).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpanEnd(const TraceSpanRecord& span) = 0;

  /// Allocates the next sink-local span id (thread-safe).
  int64_t NextSpanId() {
    // lint:relaxed-ok(only uniqueness is needed; ids order a post-hoc sort)
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> next_id_{1};
};

/// RAII span handle. Default-constructed (or nullptr-sink) spans are
/// disabled: every member is a cheap no-op.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceSink* sink, std::string name, int64_t parent_id = 0);
  ~TraceSpan() { End(); }

  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool enabled() const { return sink_ != nullptr; }
  /// This span's id while enabled, 0 otherwise. Stable across End().
  int64_t id() const { return record_.id; }

  /// Starts a child span of this one (disabled when this span is).
  TraceSpan Child(std::string name) const;

  TraceSpan& SetString(std::string key, std::string value);
  TraceSpan& SetInt(std::string key, int64_t value);
  TraceSpan& SetDouble(std::string key, double value);
  TraceSpan& SetBool(std::string key, bool value);

  /// Reports the span to the sink; further calls (and destruction) no-op.
  void End();

 private:
  TraceSink* sink_ = nullptr;
  TraceSpanRecord record_;
};

/// A sink that stores every finished span in memory (locked; usable from
/// worker threads). Feed it to EstimateContext::trace, run the estimation
/// path, then inspect or render the collected spans.
class CollectingTraceSink : public TraceSink {
 public:
  void OnSpanEnd(const TraceSpanRecord& span) override;

  /// Snapshot of the collected spans, sorted by id (construction order).
  std::vector<TraceSpanRecord> spans() const;
  size_t size() const;
  void Clear();

 private:
  mutable Mutex mu_;
  std::vector<TraceSpanRecord> spans_ GUARDED_BY(mu_);
};

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_TRACE_H_
