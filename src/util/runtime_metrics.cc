#include "util/runtime_metrics.h"

#include <algorithm>

#include "util/json.h"

namespace intellisphere {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1, 0) {}

void Histogram::Observe(double value) {
  MutexLock lock(&mu_);
  size_t i = 0;
  while (i < upper_bounds_.size() && value > upper_bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

int64_t Histogram::count() const {
  MutexLock lock(&mu_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(&mu_);
  return sum_;
}

double Histogram::Mean() const {
  MutexLock lock(&mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::vector<int64_t> Histogram::bucket_counts() const {
  MutexLock lock(&mu_);
  return buckets_;
}

void Histogram::Reset() {
  MutexLock lock(&mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

std::vector<double> DefaultLatencyBucketsUs() {
  return {1,    3,    10,    30,    100,    300,
          1000, 3000, 10000, 30000, 100000};
}

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson(const std::string& indent) const {
  std::string out = "[";
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n" + indent + "  {\"name\": \"" + JsonEscape(samples[i].name) +
           "\", \"value\": " + JsonNumber(samples[i].value) +
           ", \"unit\": \"" + JsonEscape(samples[i].unit) + "\"}";
  }
  if (!samples.empty()) out += "\n" + indent;
  out += "]";
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& nc : counters_) {
    if (nc.name == name) return nc.counter.get();
  }
  counters_.push_back({name, std::make_unique<Counter>()});
  return counters_.back().counter.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  MutexLock lock(&mu_);
  for (auto& nh : histograms_) {
    if (nh.name == name) return nh.histogram.get();
  }
  histograms_.push_back(
      {name, std::make_unique<Histogram>(std::move(upper_bounds))});
  return histograms_.back().histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  for (const auto& nc : counters_) {
    snap.samples.push_back({nc.name,
                            static_cast<double>(nc.counter->value()),
                            "count"});
  }
  for (const auto& nh : histograms_) {
    const Histogram& h = *nh.histogram;
    snap.samples.push_back(
        {nh.name + ".count", static_cast<double>(h.count()), "count"});
    snap.samples.push_back({nh.name + ".sum", h.sum(), "sum"});
    snap.samples.push_back({nh.name + ".mean", h.Mean(), "mean"});
    std::vector<int64_t> buckets = h.bucket_counts();
    const std::vector<double>& bounds = h.upper_bounds();
    int64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      std::string le = i < bounds.size() ? JsonNumberShort(bounds[i]) : "inf";
      snap.samples.push_back({nh.name + ".le." + le,
                              static_cast<double>(cumulative), "cumulative"});
    }
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& nc : counters_) nc.counter->Reset();
  for (auto& nh : histograms_) nh.histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace intellisphere
