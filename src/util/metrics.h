// Accuracy metrics used throughout the paper's evaluation:
// RMSE, RMSE% (the paper's e*100/v), R^2, and fitted y = a*x + b lines for
// the predicted-vs-actual scatter plots of Figures 11-14.

#ifndef INTELLISPHERE_UTIL_METRICS_H_
#define INTELLISPHERE_UTIL_METRICS_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace intellisphere {

/// A fitted line y = slope * x + intercept with its coefficient of
/// determination, as the paper annotates on its scatter plots
/// (e.g. "y = 0.9587x + 0.2445, R^2 = 0.98573" in Figure 11(c)).
struct FittedLine {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// Root mean square error between predictions and actuals.
/// Returns InvalidArgument when the vectors are empty or of different sizes.
Result<double> Rmse(const std::vector<double>& actual,
                    const std::vector<double>& predicted);

/// The paper's error percentage: RMSE * 100 / mean(actual).
/// Returns InvalidArgument on size mismatch or zero mean.
Result<double> RmsePercent(const std::vector<double>& actual,
                           const std::vector<double>& predicted);

/// Mean of a vector; InvalidArgument when empty.
Result<double> Mean(const std::vector<double>& v);

/// Ordinary least squares fit of predicted = slope*actual + intercept,
/// with R^2 of that fit. Requires >= 2 points and non-constant x.
Result<FittedLine> FitLine(const std::vector<double>& x,
                           const std::vector<double>& y);

/// R^2 of predictions against actuals relative to the mean model
/// (1 - SS_res/SS_tot). Requires non-constant actuals.
Result<double> RSquared(const std::vector<double>& actual,
                        const std::vector<double>& predicted);

/// Mean absolute percentage-style relative error: mean(|p-a| / a).
/// Actuals must be strictly positive.
Result<double> MeanRelativeError(const std::vector<double>& actual,
                                 const std::vector<double>& predicted);

}  // namespace intellisphere

#endif  // INTELLISPHERE_UTIL_METRICS_H_
