#include "simcluster/cluster.h"

namespace intellisphere::sim {

namespace {
// In-memory expansion of a hash table relative to the raw build input.
constexpr double kHashTableExpansion = 1.5;
}  // namespace

Cluster::Cluster(const ClusterConfig& config,
                 const GroundTruthParams& ground_truth, uint64_t seed)
    : config_(config),
      ground_truth_(ground_truth),
      dfs_(config.num_worker_nodes, config.dfs_block_bytes,
           config.dfs_replication, seed ^ 0xd1f5ULL),
      rng_(seed) {}

Result<double> Cluster::RunJob(const JobSpec& job) {
  std::vector<double> noisy;
  noisy.reserve(job.task_seconds.size());
  for (double t : job.task_seconds) {
    if (t < 0.0) return Status::InvalidArgument("negative task duration");
    double d = (t + config_.task_startup_seconds) *
               rng_.NoiseFactor(config_.task_noise_rel_stddev);
    noisy.push_back(d);
  }
  double elapsed = job.serial_seconds;
  if (!noisy.empty()) {
    ISPHERE_ASSIGN_OR_RETURN(ScheduleResult sched,
                             ScheduleTasks(noisy, config_.TotalSlots()));
    elapsed += sched.makespan_seconds;
  }
  if (job.include_setup) elapsed += config_.job_setup_seconds;
  elapsed *= rng_.NoiseFactor(config_.job_noise_rel_stddev);
  total_simulated_seconds_ += elapsed;
  ++jobs_run_;
  return elapsed;
}

Result<double> Cluster::RunStages(const std::vector<JobSpec>& stages) {
  double total = 0.0;
  bool first = true;
  for (JobSpec stage : stages) {
    stage.include_setup = first && stage.include_setup;
    first = false;
    ISPHERE_ASSIGN_OR_RETURN(double t, RunJob(stage));
    total += t;
  }
  return total;
}

bool Cluster::HashTableFits(double bytes) const {
  return bytes * kHashTableExpansion <= config_.TaskMemoryBytes();
}

}  // namespace intellisphere::sim
