// The simulated cluster: configuration + ground-truth cost model + DFS +
// job execution (scheduling, overheads, noise). Remote engines translate a
// SQL operator into one or more JobSpecs and ask the cluster to "run" them;
// the returned value is the simulated elapsed wall-clock time, which is the
// paper's costing metric.

#ifndef INTELLISPHERE_SIMCLUSTER_CLUSTER_H_
#define INTELLISPHERE_SIMCLUSTER_CLUSTER_H_

#include <vector>

#include "simcluster/config.h"
#include "simcluster/dfs.h"
#include "simcluster/ground_truth.h"
#include "simcluster/scheduler.h"
#include "util/rng.h"
#include "util/status.h"

namespace intellisphere::sim {

/// One schedulable stage of work.
struct JobSpec {
  /// Noise-free per-task compute durations, seconds. Task startup overhead
  /// is added by the cluster.
  std::vector<double> task_seconds;
  /// Serial work done once before/after the parallel stage (e.g. the
  /// driver-side broadcast of a small relation), seconds.
  double serial_seconds = 0.0;
  /// Whether the fixed job setup cost applies (true for the first stage of
  /// a query, false for follow-on stages of the same query).
  bool include_setup = true;
};

/// A simulated shared-nothing cluster.
class Cluster {
 public:
  Cluster(const ClusterConfig& config, const GroundTruthParams& ground_truth,
          uint64_t seed);

  const ClusterConfig& config() const { return config_; }
  const GroundTruth& ground_truth() const { return ground_truth_; }
  Dfs& dfs() { return dfs_; }
  const Dfs& dfs() const { return dfs_; }

  /// Runs one stage: schedules tasks over all slots, adds per-task startup
  /// and per-job setup overheads, applies multiplicative noise, and returns
  /// elapsed seconds.
  Result<double> RunJob(const JobSpec& job);

  /// Runs a query made of sequential stages (setup charged once).
  Result<double> RunStages(const std::vector<JobSpec>& stages);

  /// Number of map tasks for an input of `bytes` (one per DFS block).
  int64_t MapTasksFor(int64_t bytes) const { return dfs_.NumBlocks(bytes); }

  /// Whether a hash table over `bytes` of raw data fits one task's memory
  /// (a 1.5x in-memory expansion factor is applied).
  bool HashTableFits(double bytes) const;

  /// Cumulative simulated seconds across all RunJob calls; the training
  /// drivers report this as the paper's "total training time".
  double total_simulated_seconds() const { return total_simulated_seconds_; }
  int64_t jobs_run() const { return jobs_run_; }

 private:
  ClusterConfig config_;
  GroundTruth ground_truth_;
  Dfs dfs_;
  Rng rng_;
  double total_simulated_seconds_ = 0.0;
  int64_t jobs_run_ = 0;
};

}  // namespace intellisphere::sim

#endif  // INTELLISPHERE_SIMCLUSTER_CLUSTER_H_
