// Greedy list scheduling of tasks onto cluster slots. This is what turns
// per-task work into the elapsed (wall-clock) time the paper's cost metric
// measures, and it is the source of the "NumTaskWaves" quantization in the
// sub-op cost formulas (Figure 6).

#ifndef INTELLISPHERE_SIMCLUSTER_SCHEDULER_H_
#define INTELLISPHERE_SIMCLUSTER_SCHEDULER_H_

#include <vector>

#include "util/status.h"

namespace intellisphere::sim {

/// Result of scheduling one stage of tasks.
struct ScheduleResult {
  double makespan_seconds = 0.0;
  int num_waves = 0;  ///< ceil(num_tasks / slots)
};

/// Assigns each task (in order) to the earliest-available of `slots`
/// identical slots and returns the makespan. Task durations must be
/// non-negative and slots positive.
Result<ScheduleResult> ScheduleTasks(const std::vector<double>& task_seconds,
                                     int slots);

/// The closed-form wave count used by the analytical formulas:
/// ceil(num_tasks / slots).
int64_t NumTaskWaves(int64_t num_tasks, int slots);

}  // namespace intellisphere::sim

#endif  // INTELLISPHERE_SIMCLUSTER_SCHEDULER_H_
