// A simulated distributed file system: files split into fixed-size blocks,
// blocks placed with n-way replication across worker nodes. The remote
// engines use it to derive map-task counts and data locality.

#ifndef INTELLISPHERE_SIMCLUSTER_DFS_H_
#define INTELLISPHERE_SIMCLUSTER_DFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace intellisphere::sim {

/// Placement of one block: the nodes holding its replicas.
struct BlockPlacement {
  std::vector<int> replica_nodes;
};

/// Metadata of a stored file.
struct DfsFile {
  std::string name;
  int64_t bytes = 0;
  std::vector<BlockPlacement> blocks;
};

/// The simulated DFS namespace.
class Dfs {
 public:
  /// `replication` is clamped to the node count.
  Dfs(int num_nodes, int64_t block_bytes, int replication, uint64_t seed);

  /// Creates a file of the given size with randomized block placement.
  /// AlreadyExists on name collision; InvalidArgument on non-positive size.
  Status AddFile(const std::string& name, int64_t bytes);

  /// Removes a file; NotFound when absent.
  Status RemoveFile(const std::string& name);

  Result<DfsFile> GetFile(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Blocks needed for `bytes` (ceil division); 1 block minimum.
  int64_t NumBlocks(int64_t bytes) const;

  /// Fraction of blocks of `name` with a replica on `node`; used by tests
  /// to validate locality expectations.
  Result<double> LocalReplicaFraction(const std::string& name,
                                      int node) const;

  /// Total bytes stored (before replication).
  int64_t TotalLogicalBytes() const;

  int num_nodes() const { return num_nodes_; }
  int replication() const { return replication_; }
  int64_t block_bytes() const { return block_bytes_; }

 private:
  int num_nodes_;
  int64_t block_bytes_;
  int replication_;
  Rng rng_;
  std::map<std::string, DfsFile> files_;
};

}  // namespace intellisphere::sim

#endif  // INTELLISPHERE_SIMCLUSTER_DFS_H_
