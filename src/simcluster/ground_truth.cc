#include "simcluster/ground_truth.h"

#include <algorithm>
#include <cmath>

namespace intellisphere::sim {

namespace {
constexpr double kMicro = 1e-6;
// Reference size for the nonlinear warp so the factor is 1 + nl at
// 1000-byte records and ~1 + nl/5 at 40-byte records.
constexpr double kWarpRefBytes = 1000.0;
}  // namespace

double GroundTruth::Eval(const PrimitiveLine& line, int64_t rec_bytes) const {
  double base = line.intercept_us +
                line.slope_us_per_byte * static_cast<double>(rec_bytes);
  double warp = 1.0 + params_.nonlinearity *
                          std::sqrt(static_cast<double>(rec_bytes) /
                                    kWarpRefBytes);
  return base * warp * kMicro;
}

double GroundTruth::ReadDfsSec(int64_t rec_bytes) const {
  return Eval(params_.read_dfs, rec_bytes);
}

double GroundTruth::WriteDfsSec(int64_t rec_bytes) const {
  return Eval(params_.write_dfs, rec_bytes);
}

double GroundTruth::ReadLocalSec(int64_t rec_bytes) const {
  return Eval(params_.read_local, rec_bytes);
}

double GroundTruth::WriteLocalSec(int64_t rec_bytes) const {
  return Eval(params_.write_local, rec_bytes);
}

double GroundTruth::ShuffleSec(int64_t rec_bytes) const {
  return Eval(params_.shuffle, rec_bytes);
}

double GroundTruth::MergeSec(int64_t rec_bytes) const {
  return Eval(params_.merge, rec_bytes);
}

double GroundTruth::HashBuildSec(int64_t rec_bytes,
                                 bool fits_in_memory) const {
  double fit = Eval(params_.hash_build_fit, rec_bytes);
  if (fits_in_memory) return fit;
  double spill = Eval(params_.hash_build_spill, rec_bytes);
  return std::max(fit, spill);
}

double GroundTruth::HashProbeSec(int64_t rec_bytes) const {
  return Eval(params_.hash_probe, rec_bytes);
}

double GroundTruth::ScanSec(int64_t rec_bytes) const {
  return Eval(params_.scan, rec_bytes);
}

double GroundTruth::BroadcastSec(int64_t rec_bytes, int num_nodes) const {
  return Eval(params_.broadcast_per_node, rec_bytes) *
         static_cast<double>(std::max(1, num_nodes));
}

double GroundTruth::SortSec(int64_t rec_bytes, int64_t run_rows) const {
  double comparisons = std::max(1.0, std::log2(static_cast<double>(
                                         std::max<int64_t>(2, run_rows))));
  return Eval(params_.sort_per_cmp, rec_bytes) * comparisons;
}

}  // namespace intellisphere::sim
