#include "simcluster/dfs.h"

#include <algorithm>

namespace intellisphere::sim {

Dfs::Dfs(int num_nodes, int64_t block_bytes, int replication, uint64_t seed)
    : num_nodes_(std::max(1, num_nodes)),
      block_bytes_(std::max<int64_t>(1, block_bytes)),
      replication_(std::clamp(replication, 1, std::max(1, num_nodes))),
      rng_(seed) {}

Status Dfs::AddFile(const std::string& name, int64_t bytes) {
  if (bytes <= 0) return Status::InvalidArgument("file size must be positive");
  if (files_.count(name)) return Status::AlreadyExists("file '" + name + "'");
  DfsFile file;
  file.name = name;
  file.bytes = bytes;
  int64_t blocks = NumBlocks(bytes);
  file.blocks.reserve(static_cast<size_t>(blocks));
  for (int64_t b = 0; b < blocks; ++b) {
    // Pick `replication_` distinct nodes: first replica random (stands in
    // for the writer's node), the rest from a shuffle of the remainder.
    BlockPlacement placement;
    auto perm = rng_.Permutation(static_cast<size_t>(num_nodes_));
    for (int r = 0; r < replication_; ++r) {
      placement.replica_nodes.push_back(static_cast<int>(perm[r]));
    }
    file.blocks.push_back(std::move(placement));
  }
  files_.emplace(name, std::move(file));
  return Status::OK();
}

Status Dfs::RemoveFile(const std::string& name) {
  if (files_.erase(name) == 0) return Status::NotFound("file '" + name + "'");
  return Status::OK();
}

Result<DfsFile> Dfs::GetFile(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("file '" + name + "'");
  return it->second;
}

bool Dfs::Contains(const std::string& name) const {
  return files_.count(name) > 0;
}

int64_t Dfs::NumBlocks(int64_t bytes) const {
  if (bytes <= 0) return 0;
  return std::max<int64_t>(1, (bytes + block_bytes_ - 1) / block_bytes_);
}

Result<double> Dfs::LocalReplicaFraction(const std::string& name,
                                         int node) const {
  ISPHERE_ASSIGN_OR_RETURN(DfsFile file, GetFile(name));
  if (file.blocks.empty()) return 0.0;
  int64_t local = 0;
  for (const auto& b : file.blocks) {
    if (std::find(b.replica_nodes.begin(), b.replica_nodes.end(), node) !=
        b.replica_nodes.end()) {
      ++local;
    }
  }
  return static_cast<double>(local) / static_cast<double>(file.blocks.size());
}

int64_t Dfs::TotalLogicalBytes() const {
  int64_t total = 0;
  for (const auto& [name, f] : files_) total += f.bytes;
  return total;
}

}  // namespace intellisphere::sim
