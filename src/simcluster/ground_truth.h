// The simulator's ground-truth primitive cost model.
//
// This stands in for the physical behaviour of the real Hive/Hadoop cluster
// the paper measured. Per-record costs are anchored to the paper's own
// fitted lines (ReadDFS from Fig 7(b), WriteDFS/Shuffle/RecMerge from
// Fig 13(c,d,e), the two HashBuild regimes from Fig 13(f)) and then warped
// by a mild nonlinearity plus per-task noise, so that:
//   * sub-op probes still see tight near-linear per-record behaviour
//     (R^2 >= 0.95, as the paper reports), while
//   * end-to-end logical-operator times are visibly nonlinear in the
//     training dimensions (waves, spills, algorithm switches), which is why
//     the paper's NN beats plain linear regression on joins.
//
// The costing module under test never reads these constants; it only
// observes elapsed times, like the paper's module observing the cluster.

#ifndef INTELLISPHERE_SIMCLUSTER_GROUND_TRUTH_H_
#define INTELLISPHERE_SIMCLUSTER_GROUND_TRUTH_H_

#include <cstdint>

namespace intellisphere::sim {

/// One primitive's affine ground truth: microseconds per record =
/// intercept_us + slope_us_per_byte * record_bytes.
struct PrimitiveLine {
  double intercept_us = 0.0;
  double slope_us_per_byte = 0.0;
};

/// All ground-truth constants; override fields to build alternative remote
/// systems (the Spark-like engine uses different constants).
struct GroundTruthParams {
  PrimitiveLine read_dfs = {0.6323, 0.0041};    // Fig 7(b)
  PrimitiveLine write_dfs = {0.7403, 0.0314};   // Fig 13(c)
  PrimitiveLine read_local = {0.30, 0.0021};
  PrimitiveLine write_local = {0.42, 0.0160};
  PrimitiveLine shuffle = {5.2551, 0.0126};     // Fig 13(d)
  PrimitiveLine merge = {36.701, 0.0344};       // Fig 13(e), per output rec
  PrimitiveLine hash_build_fit = {18.241, 0.0248};    // Fig 13(f) left
  PrimitiveLine hash_build_spill = {-51.614, 0.1821}; // Fig 13(f) right
  PrimitiveLine hash_probe = {0.9, 0.0008};
  PrimitiveLine scan = {0.05, 0.0006};
  /// Broadcast cost per record per receiving node.
  PrimitiveLine broadcast_per_node = {1.6, 0.0120};
  /// Per-record, per-comparison sort cost; total sort of n records costs
  /// n * log2(n) comparisons.
  PrimitiveLine sort_per_cmp = {0.055, 0.00035};

  /// Strength of the sqrt-of-size warp applied to every primitive
  /// (0 disables). 0.05 keeps single-primitive fits at R^2 > 0.95.
  double nonlinearity = 0.05;
};

/// Evaluates ground-truth per-record costs in seconds.
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(const GroundTruthParams& params) : params_(params) {}

  const GroundTruthParams& params() const { return params_; }

  // Per-record costs, in seconds, for a record of `rec_bytes` bytes.
  double ReadDfsSec(int64_t rec_bytes) const;
  double WriteDfsSec(int64_t rec_bytes) const;
  double ReadLocalSec(int64_t rec_bytes) const;
  double WriteLocalSec(int64_t rec_bytes) const;
  double ShuffleSec(int64_t rec_bytes) const;
  /// Merging two records into one output record.
  double MergeSec(int64_t rec_bytes) const;
  /// `fits_in_memory` selects the regime of Fig 13(f); the spill line is
  /// clamped from below by the in-memory line so small records never get a
  /// negative cost.
  double HashBuildSec(int64_t rec_bytes, bool fits_in_memory) const;
  double HashProbeSec(int64_t rec_bytes) const;
  double ScanSec(int64_t rec_bytes) const;
  /// Broadcasting one record to `num_nodes` receivers.
  double BroadcastSec(int64_t rec_bytes, int num_nodes) const;
  /// Sorting `run_rows` records of `rec_bytes` each: per-record cost is
  /// log2(run_rows) comparisons.
  double SortSec(int64_t rec_bytes, int64_t run_rows) const;

 private:
  /// intercept + slope*bytes, in seconds, warped by the nonlinearity.
  double Eval(const PrimitiveLine& line, int64_t rec_bytes) const;

  GroundTruthParams params_;
};

}  // namespace intellisphere::sim

#endif  // INTELLISPHERE_SIMCLUSTER_GROUND_TRUTH_H_
