// Cluster configuration for the simulated shared-nothing remote systems.
// Defaults mirror the paper's testbed: one master plus three data nodes,
// 8 GB of memory and two CPU cores per node (Section 7).

#ifndef INTELLISPHERE_SIMCLUSTER_CONFIG_H_
#define INTELLISPHERE_SIMCLUSTER_CONFIG_H_

#include <cstdint>

namespace intellisphere::sim {

/// Static description of a simulated cluster.
struct ClusterConfig {
  int num_worker_nodes = 3;
  int cores_per_node = 2;
  int64_t memory_per_node_bytes = 8LL * 1024 * 1024 * 1024;
  int64_t dfs_block_bytes = 128LL * 1024 * 1024;
  int dfs_replication = 3;

  /// Fraction of a node's memory one task may use for hash tables before
  /// spilling (drives the two-regime hash-build behaviour of Fig 13(f)).
  double task_memory_fraction = 0.35;

  /// Fraction of map tasks achieving data locality; the paper cites
  /// "more than 90% of times".
  double data_locality_fraction = 0.92;

  /// Fixed per-job overhead (scheduling, compilation) in seconds.
  double job_setup_seconds = 2.0;
  /// Fixed per-task launch overhead in seconds (container/JVM start).
  double task_startup_seconds = 0.6;

  /// Relative stddev of the multiplicative noise applied to each task.
  double task_noise_rel_stddev = 0.03;
  /// Relative stddev of the per-job noise (cluster-wide jitter).
  double job_noise_rel_stddev = 0.02;

  /// Total task slots across the cluster ("total number of parallelism in
  /// the system, i.e., the total number of cores" per Section 4).
  int TotalSlots() const { return num_worker_nodes * cores_per_node; }

  /// Memory budget of a single task.
  double TaskMemoryBytes() const {
    return task_memory_fraction *
           static_cast<double>(memory_per_node_bytes) /
           static_cast<double>(cores_per_node);
  }
};

}  // namespace intellisphere::sim

#endif  // INTELLISPHERE_SIMCLUSTER_CONFIG_H_
