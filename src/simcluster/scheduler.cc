#include "simcluster/scheduler.h"

#include <algorithm>
#include <queue>

namespace intellisphere::sim {

Result<ScheduleResult> ScheduleTasks(const std::vector<double>& task_seconds,
                                     int slots) {
  if (slots <= 0) return Status::InvalidArgument("slots must be positive");
  ScheduleResult result;
  if (task_seconds.empty()) return result;
  for (double t : task_seconds) {
    if (t < 0.0) return Status::InvalidArgument("negative task duration");
  }
  // Min-heap of slot-available times.
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap;
  for (int i = 0; i < slots; ++i) heap.push(0.0);
  double makespan = 0.0;
  for (double t : task_seconds) {
    double start = heap.top();
    heap.pop();
    double end = start + t;
    makespan = std::max(makespan, end);
    heap.push(end);
  }
  result.makespan_seconds = makespan;
  result.num_waves = static_cast<int>(
      NumTaskWaves(static_cast<int64_t>(task_seconds.size()), slots));
  return result;
}

int64_t NumTaskWaves(int64_t num_tasks, int slots) {
  if (num_tasks <= 0 || slots <= 0) return 0;
  return (num_tasks + slots - 1) / slots;
}

}  // namespace intellisphere::sim
