// Sharded LRU cache for hybrid cost estimates — the memoization layer of
// the concurrent serving front-end (DESIGN.md §11). Federation planners
// re-cost near-identical (system, operator, policy) keys across candidate
// placements; the paper's serving setting (Section 5: the estimator is
// invoked per candidate placement inside Teradata's optimizer) makes the
// estimate path a high-QPS read-mostly workload, so the cache is sharded —
// one mutex + LRU list + hash index per shard — and a lookup touches
// exactly one shard lock.
//
// Correctness over hit rate: every entry stores the *full* canonical key
// and a lookup verifies it byte-for-byte (the 64-bit hash only routes to a
// shard and buckets the index), so a hash collision can never return the
// wrong estimate, and a hit is bit-identical to the uncached computation.
// Colliding keys displace each other (counted as an eviction) instead of
// chaining — at 64 bits a collision is a once-per-geologic-era event, not
// a capacity concern.
// Stale-model protection is epoch-based: every entry records the
// CostEstimator::model_epoch() captured before its value was computed, and
// Get rejects entries whose epoch differs from the caller's current epoch
// — an estimate produced against pre-retrain weights is never served after
// OfflineTuneAll / profile re-registration bumps the epoch.
//
// Optimistic read path (DESIGN.md §14): each shard additionally keeps a
// direct-mapped table of fixed-width *seqlock slots* mirroring its hottest
// entries. A Get first probes the slot without any lock: it snapshots the
// slot's atomic payload words between two reads of the slot's version
// counter (even = stable, odd = writer active) and serves the hit — or
// declares a definitive miss when the shard's `unslotted` count says every
// index entry is mirrored — entirely lock-free. Writers (insert, evict,
// LRU maintenance, Clear) still serialize on the shard Mutex and bump the
// version counter around every slot write, so a reader either observes a
// fully consistent snapshot or retries (once) and falls back to the locked
// probe. The LRU touch on a lock-free hit becomes a sampled, non-blocking
// TryLock bump (serving.cache.touch_sample), so steady-state warm hits
// acquire no mutex at all — CacheStats::locked_gets counts the probes that
// did.

#ifndef INTELLISPHERE_SERVING_ESTIMATE_CACHE_H_
#define INTELLISPHERE_SERVING_ESTIMATE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.h"

#include "core/estimate_context.h"
#include "core/hybrid.h"
#include "relational/query.h"
#include "util/properties.h"
#include "util/runtime_metrics.h"
#include "util/status.h"

namespace intellisphere::serving {

/// Properties keys the cache reads (documented in docs/CONFIG.md).
inline constexpr char kCacheShardsKey[] = "serving.cache.shards";
inline constexpr char kCacheCapacityKey[] = "serving.cache.capacity";
inline constexpr char kCacheTtlSecondsKey[] = "serving.cache.ttl_seconds";
inline constexpr char kCacheQuantizeBitsKey[] = "serving.cache.quantize_bits";
inline constexpr char kCacheTouchSampleKey[] = "serving.cache.touch_sample";

/// Cache tuning knobs.
struct CacheOptions {
  /// Number of independently locked shards; keys are hash-routed.
  int shards = 8;
  /// Total entry budget across all shards (split evenly; each shard keeps
  /// at least one entry). 0 disables caching entirely.
  int64_t capacity = 4096;
  /// Entry lifetime on the *deployment clock* (the `now` passed to
  /// Get/Put, not wall time — deterministic and testable). 0 = no expiry.
  double ttl_seconds = 0.0;
  /// Low-order mantissa bits dropped from double-typed key fields before
  /// hashing. 0 (default) keys on exact bit patterns, which is what makes
  /// cached results provably bit-identical; raising it trades exactness
  /// for hit rate on jittery statistics. Clamped to [0, 52].
  int quantize_bits = 0;
  /// A lock-free hit bumps its entry's LRU position only every N-th read
  /// (and only via a non-blocking TryLock), so the warm path stays
  /// mutex-free. 1 = touch on every hit; must be >= 1.
  int touch_sample = 64;

  /// Reads the serving.cache.* keys above; absent keys keep their
  /// defaults. InvalidArgument on non-positive shards or negative values.
  [[nodiscard]] static Result<CacheOptions> FromProperties(
      const Properties& props);
};

/// Point-in-time cache statistics.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;        ///< every Get that returned nothing
  int64_t evictions = 0;     ///< capacity + TTL removals
  int64_t stale_epoch = 0;   ///< subset of misses rejected by epoch check
  int64_t stale_served = 0;  ///< TTL-expired hits served under allow_stale
  int64_t entries = 0;       ///< live entries right now
  // Optimistic-read-path breakdown (DESIGN.md §14).
  int64_t lockless_hits = 0;    ///< hits served from a seqlock slot, no mutex
  int64_t lockless_misses = 0;  ///< definitive misses declared without a mutex
  int64_t locked_gets = 0;      ///< Gets that fell back to the locked probe
  int64_t lru_touches = 0;      ///< sampled TryLock LRU bumps that landed
  double HitRate() const {
    int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Registry counters the cache bumps alongside its internal stats, so
/// serving.cache.{hits,misses,evictions,stale_epoch} show up in snapshots
/// next to the estimate.* counters. Null members are skipped.
struct CacheCounters {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* evictions = nullptr;
  Counter* stale_epoch = nullptr;
  Counter* stale_served = nullptr;
};

/// Builds the canonical cache key for one estimate call. The key covers
/// everything that can change the returned HybridEstimate:
///   - system name and operator type,
///   - every statistic of the active operator payload — including the
///     applicability-rule inputs (equi-join flag, bucketing flags, hot-key
///     fraction) that LogicalOpFeatures() does not carry,
///   - the effective choice policy (per-request override, else the
///     profile's configured policy),
///   - whether provenance detail was requested (a provenance estimate
///     carries elimination strings a cost-only one lacks),
///   - the costing phase of a time-phased profile (now >= switch_time), so
///     a pre-switch sub-op estimate is never served post-switch.
/// Doubles are keyed by their (optionally quantized) bit patterns.
std::string CanonicalCacheKey(const std::string& system,
                              const rel::SqlOperator& op,
                              std::optional<core::ChoicePolicy> policy,
                              bool provenance, bool logical_phase,
                              int quantize_bits);

/// Allocation-free variant for hot loops: clears `*out` and rebuilds the
/// key in place, reusing the buffer's capacity across calls.
void CanonicalCacheKeyTo(const std::string& system,
                         const rel::SqlOperator& op,
                         std::optional<core::ChoicePolicy> policy,
                         bool provenance, bool logical_phase,
                         int quantize_bits, std::string* out);

/// The sharded LRU estimate cache. All methods are thread-safe; a call
/// locks exactly one shard.
class EstimateCache {
 public:
  explicit EstimateCache(CacheOptions options);

  /// Looks up `key`. Returns the cached estimate only when the entry's
  /// model epoch equals `epoch` and its TTL (if configured) has not lapsed
  /// at deployment time `now`; otherwise erases the dead entry and counts
  /// a miss (plus stale_epoch when the epoch check failed). A hit
  /// refreshes the entry's LRU position.
  ///
  /// Degraded mode (`allow_stale`, DESIGN.md §12): a TTL-expired entry is
  /// served anyway — counted as a hit plus stale_served, reported through
  /// `*served_stale` when non-null, and *kept* in the cache so repeated
  /// degraded lookups keep answering. Epoch-stale entries are never served:
  /// a pre-retrain value is wrong, not merely old.
  std::optional<core::HybridEstimate> Get(const std::string& key,
                                          uint64_t epoch, double now,
                                          const CacheCounters& counters = {},
                                          bool allow_stale = false,
                                          bool* served_stale = nullptr);

  /// Inserts (or refreshes) `key` with a value computed at model `epoch`
  /// and deployment time `now`, evicting the shard's LRU tail when over
  /// budget. No-op when capacity is 0.
  void Put(const std::string& key, uint64_t epoch, double now,
           const core::HybridEstimate& value,
           const CacheCounters& counters = {});

  /// Drops every entry (stats counters are kept).
  void Clear();

  CacheStats Stats() const;
  size_t size() const;
  const CacheOptions& options() const { return options_; }

  /// Which shard a key routes to (exposed for distribution tests).
  int ShardOf(const std::string& key) const;

 private:
  /// Fixed-width, trivially-copyable image of a cache entry small enough to
  /// publish through a seqlock slot as raw 64-bit words. Estimates whose
  /// key or payload exceed these caps (notably sub-op results carrying
  /// candidate provenance) simply stay on the locked path — the slot is a
  /// fast mirror, not the source of truth.
  static constexpr size_t kFastKeyCap = 104;
  static constexpr size_t kFastAlgoCap = 24;
  struct PackedEstimate {
    uint64_t hash = 0;
    uint64_t epoch = 0;
    double stored_now = 0.0;
    double seconds = 0.0;
    double remedy_alpha = 0.0;
    double nn_seconds = 0.0;
    double remedy_seconds = 0.0;
    int32_t eliminated_count = 0;
    uint8_t approach = 0;
    uint8_t flags = 0;  ///< bit0 used_remedy, bit1 fell_back_to_sub_op
    uint8_t key_len = 0;
    uint8_t algo_len = 0;
    char key[kFastKeyCap] = {};
    char algorithm[kFastAlgoCap] = {};
  };
  static_assert(std::is_trivially_copyable_v<PackedEstimate>);
  static_assert(sizeof(PackedEstimate) % sizeof(uint64_t) == 0);
  static constexpr size_t kSlotWords = sizeof(PackedEstimate) / sizeof(uint64_t);

  /// One seqlock slot. seq == 0 means never written; odd means a writer is
  /// mid-publish; any other even value frames a consistent payload.
  struct FastSlot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kSlotWords] = {};
    /// Lock-free read counter driving the sampled LRU touch.
    std::atomic<uint64_t> reads{0};
  };

  struct Entry {
    std::string key;     ///< full key, compared on every lookup
    uint64_t hash = 0;   ///< cached so eviction needn't rehash
    core::HybridEstimate value;
    uint64_t epoch = 0;
    double stored_now = 0.0;
    bool slotted = false;  ///< currently mirrored in a FastSlot
  };
  struct Shard {
    mutable Mutex mu;
    /// front = most recently used
    std::list<Entry> lru GUARDED_BY(mu);
    /// Keyed by the precomputed 64-bit key hash: the probe hashes the
    /// (~100-byte) canonical key exactly once, and index operations are
    /// integer-keyed. Entry::key disambiguates collisions.
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index
        GUARDED_BY(mu);
    /// Direct-mapped seqlock mirror, slot_count_ slots (atomics are safe to
    /// touch without mu; the *write* protocol is serialized by mu).
    std::unique_ptr<FastSlot[]> slots;
    /// Which entry hash owns each slot (writer-side bookkeeping only).
    struct SlotOwner {
      bool used = false;
      uint64_t hash = 0;
    };
    std::vector<SlotOwner> owners GUARDED_BY(mu);
    /// Number of index entries NOT mirrored in a slot. When 0, a key absent
    /// from its slot is absent from the shard, so a reader can declare a
    /// miss without locking.
    std::atomic<int64_t> unslotted{0};
  };

  static bool Packable(const std::string& key, const core::HybridEstimate& v);
  static void Pack(const std::string& key, uint64_t hash, uint64_t epoch,
                   double stored_now, const core::HybridEstimate& v,
                   PackedEstimate* out);
  static void Unpack(const PackedEstimate& p, core::HybridEstimate* v);
  size_t SlotIndex(uint64_t hash) const {
    return ((hash >> 32) ^ hash) & slot_mask_;
  }
  /// Seqlock-writes `p` (or an empty marker when null) into slot `si`.
  void WriteSlot(Shard& shard, size_t si, const PackedEstimate* p);
  /// Mirrors `e` into its slot if packable (stealing the slot from any
  /// previous owner); otherwise ensures `e` is counted unslotted. Keeps the
  /// unslotted invariant. Call under shard.mu after insert/refresh.
  void PublishEntry(Shard& shard, Entry& e) REQUIRES(shard.mu);
  /// Unpublishes `e` ahead of its erase (evict/expire/stale): clears its
  /// slot or decrements unslotted. Call under shard.mu.
  void RetireEntry(Shard& shard, Entry& e) REQUIRES(shard.mu);

  CacheOptions options_;
  int64_t per_shard_capacity_ = 0;
  size_t slot_count_ = 0;  ///< per shard; 0 when caching is disabled
  size_t slot_mask_ = 0;
  /// unique_ptrs because Shard (mutex) is immovable.
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> stale_epoch_{0};
  std::atomic<int64_t> stale_served_{0};
  std::atomic<int64_t> lockless_hits_{0};
  std::atomic<int64_t> lockless_misses_{0};
  std::atomic<int64_t> locked_gets_{0};
  std::atomic<int64_t> lru_touches_{0};
};

}  // namespace intellisphere::serving

#endif  // INTELLISPHERE_SERVING_ESTIMATE_CACHE_H_
