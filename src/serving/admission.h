// Tenant-aware admission control in front of EstimationService
// (DESIGN.md §17): the serving layer's protection against *load*, the way
// the circuit breakers (remote/health.h) are its protection against
// backend *faults*.
//
// Every request passes a three-rung response ladder before it may touch
// the estimator:
//
//   1. serve          — tokens available, queue shallow: the request is
//                       forwarded untouched (bit-identical to calling the
//                       service directly).
//   2. serve-degraded — the tenant's token bucket is empty or the virtual
//                       queue is past the degrade threshold: the request
//                       runs with EstimateContext::admission_degraded set,
//                       which routes it down the existing degradation
//                       ladder (sub-op formulas / last-known-good / stale
//                       model / stale cache entries) instead of the
//                       expensive logical-model forward pass. Degraded
//                       answers carry an "admission_overload:*" reason and
//                       are never cached.
//   3. shed           — the queue is full (ResourceExhausted), the request
//                       is background-priority under pressure
//                       (ResourceExhausted), or the queue model predicts
//                       the deadline cannot be met (DeadlineExceeded, shed
//                       *early*: no estimator work is wasted on an answer
//                       nobody can use).
//
// All state advances on the deployment clock carried by the requests
// themselves — no wall-clock reads — so admission decisions are exactly
// reproducible under a seeded traffic trace (traffic/harness.h). The
// queue is *virtual*: a leaky-bucket model (`queue_clears_at`, advanced by
// `service_seconds` per admitted request) rather than a real wait queue,
// which keeps Decide() O(1), lock-bounded, and deterministic.
//
// Concurrency contract: every method is const and safe for concurrent
// callers; admission state (buckets, virtual queue, tallies) lives behind
// one annotated Mutex. The wrapped service is only ever called *outside*
// the lock.

#ifndef INTELLISPHERE_SERVING_ADMISSION_H_
#define INTELLISPHERE_SERVING_ADMISSION_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/estimate_context.h"
#include "core/hybrid.h"
#include "serving/service.h"
#include "util/properties.h"
#include "util/runtime_metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace intellisphere::serving {

/// Properties keys for the admission controller (docs/CONFIG.md).
inline constexpr char kAdmissionEnabledKey[] = "serving.admission.enabled";
inline constexpr char kAdmissionTenantRateKey[] =
    "serving.admission.tenant_rate";
inline constexpr char kAdmissionTenantBurstKey[] =
    "serving.admission.tenant_burst";
inline constexpr char kAdmissionMaxQueueKey[] = "serving.admission.max_queue";
inline constexpr char kAdmissionDegradeFractionKey[] =
    "serving.admission.degrade_fraction";
inline constexpr char kAdmissionBackgroundFractionKey[] =
    "serving.admission.background_fraction";
inline constexpr char kAdmissionServiceSecondsKey[] =
    "serving.admission.service_seconds";

struct AdmissionOptions {
  /// Disabled = every request serves at full fidelity (rung one), with no
  /// queue or bucket accounting; the controller is a transparent pass-through.
  bool enabled = true;
  /// Per-tenant token refill rate (requests/second of deployment time).
  double tenant_rate = 200.0;
  /// Per-tenant bucket capacity (burst allowance). A tenant whose bucket
  /// is empty is served degraded, not shed — rate limits bound *cost*,
  /// only queue pressure bounds *admission*.
  double tenant_burst = 50.0;
  /// Virtual queue capacity in requests. Admitting past this sheds with
  /// ResourceExhausted.
  int max_queue = 256;
  /// Queue depth (as a fraction of max_queue) beyond which even
  /// token-holding foreground requests are served degraded.
  double degrade_fraction = 0.5;
  /// Queue depth fraction beyond which background-priority requests
  /// (lifecycle shadow / retrain probes) are shed so foreground planners
  /// keep the capacity.
  double background_fraction = 0.25;
  /// Modeled per-request service time on the deployment clock; drives the
  /// leaky-bucket queue drain and deadline-feasibility prediction.
  double service_seconds = 0.0002;

  /// Reads the serving.admission.* keys; absent keys keep their defaults.
  [[nodiscard]] static Result<AdmissionOptions> FromProperties(
      const Properties& props);
  /// Range-checks the fields (rates/burst/service > 0, fractions in (0,1],
  /// max_queue >= 1).
  [[nodiscard]] Status Validate() const;
};

/// The rung of the response ladder a request landed on.
enum class AdmissionOutcome {
  kServe,
  kServeDegraded,
  kShedLoad,      ///< queue full, or background yielded to foreground
  kShedDeadline,  ///< predicted completion past the request deadline
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

/// One admission decision with the detail the counters and trace span need.
struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kServe;
  /// The tenant's bucket lacked tokens (cause of a degraded serve).
  bool tenant_throttled = false;
  /// A background request was shed purely for its priority class.
  bool background_yield = false;
  /// Virtual queue depth (requests) observed at decision time.
  double queue_depth = 0.0;
};

/// Monotonic tallies since construction, plus live queue/bucket state.
struct AdmissionStats {
  int64_t admitted = 0;          ///< requests served at full fidelity
  int64_t degraded = 0;          ///< requests served degraded
  int64_t shed_load = 0;         ///< requests shed with ResourceExhausted
  int64_t shed_deadline = 0;     ///< requests shed with DeadlineExceeded
  int64_t tenant_throttled = 0;  ///< degraded serves caused by empty buckets
  int64_t background_yield = 0;  ///< background requests shed under pressure
  int64_t tenants_tracked = 0;   ///< distinct tenants with a bucket
  double queue_clears_at = 0.0;  ///< deployment time the virtual queue drains
};

/// Tenant-aware admission controller wrapping an EstimationService.
class AdmissionController {
 public:
  /// `service` must outlive the controller. Options are validated lazily:
  /// construct via validated FromProperties options, or call
  /// options().Validate() when assembling them by hand.
  explicit AdmissionController(const EstimationService* service,
                               AdmissionOptions options = {});

  /// Single-request path: one admission decision (tenant, priority, and
  /// deadline read from `ctx`; the clock from `request.now`), then either
  /// a forward to the wrapped service — context untouched on rung one,
  /// `admission_degraded` set on rung two — or a shed error
  /// (ResourceExhausted / DeadlineExceeded) with the estimator never
  /// invoked. Emits an `admission` trace span and serving.admission.*
  /// counters.
  [[nodiscard]] Result<core::HybridEstimate> Estimate(
      const EstimateRequest& request,
      const core::EstimateContext& ctx = {}) const;

  /// Batch path: the batch is admitted or shed as a unit (one decision for
  /// all `requests.size()` slots, on the first request's clock), so a
  /// planner's candidate fan-out is never half-answered. Shed batches
  /// return the same status in every slot.
  [[nodiscard]] std::vector<Result<core::HybridEstimate>> EstimateBatch(
      std::span<const EstimateRequest> requests,
      const core::EstimateContext& ctx = {}) const;

  /// The decision alone (no service call): admits `batch_size` requests at
  /// deployment time `now` for `ctx`'s tenant/priority/deadline, advancing
  /// buckets and the virtual queue exactly as Estimate would. Exposed for
  /// tests and for callers that gate non-estimate work (lifecycle).
  AdmissionDecision Admit(size_t batch_size, double now,
                          const core::EstimateContext& ctx) const;

  /// True when background work should currently yield: the virtual queue
  /// at `now` is past the background_fraction threshold. Read-only (does
  /// not advance any state); the lifecycle manager polls this before
  /// launching retrains (DESIGN.md §17).
  bool ShouldYieldBackground(double now) const;

  AdmissionStats Stats() const;

  /// serving.admission.* samples in the BENCH metric shape.
  MetricsSnapshot StatsSnapshot() const;

  /// Admission-state JSON for EXPLAIN tooling; top-level key "admission",
  /// validated by scripts/check_explain_json.py.
  std::string ExplainJson() const;

  const AdmissionOptions& options() const { return options_; }
  const EstimationService* service() const { return service_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill = 0.0;
  };

  double QueueDepthLocked(double now) const REQUIRES(mu_);

  const EstimationService* service_;
  AdmissionOptions options_;
  /// Admission is a hidden side effect of the logically-const serve path
  /// (same pattern as the service's cache).
  mutable Mutex mu_;
  mutable double queue_clears_at_ GUARDED_BY(mu_) = 0.0;
  mutable std::map<std::string, Bucket, std::less<>> buckets_ GUARDED_BY(mu_);
  mutable AdmissionStats tallies_ GUARDED_BY(mu_);
};

}  // namespace intellisphere::serving

#endif  // INTELLISPHERE_SERVING_ADMISSION_H_
