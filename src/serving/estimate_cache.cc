#include "serving/estimate_cache.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <utility>

namespace intellisphere::serving {

namespace {

/// Binary key packing: fixed-width native-endian encodings appended to a
/// std::string. The encoding only needs to be injective and stable within
/// a process, not portable, so a raw 8-byte memcpy append is fine (and
/// keeps the key build off the byte-at-a-time push_back path).
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendByte(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

/// Keys a double by its bit pattern with the low `quantize_bits` mantissa
/// bits dropped. bits = 0 is the identity (exact match only); the IEEE-754
/// layout keeps quantized patterns monotone within a sign+exponent bucket,
/// so nearby magnitudes coalesce.
void AppendDouble(std::string* out, double v, int quantize_bits) {
  uint64_t pattern = std::bit_cast<uint64_t>(v);
  if (quantize_bits > 0) {
    int bits = std::min(quantize_bits, 52);
    pattern &= ~((uint64_t{1} << bits) - 1);
  }
  AppendU64(out, pattern);
}

uint64_t HashKey(const std::string& key) {
  return static_cast<uint64_t>(std::hash<std::string>{}(key));
}

}  // namespace

Result<CacheOptions> CacheOptions::FromProperties(const Properties& props) {
  CacheOptions opts;
  if (props.Contains(kCacheShardsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t shards, props.GetInt(kCacheShardsKey));
    if (shards < 1) {
      return Status::InvalidArgument("serving.cache.shards must be >= 1");
    }
    opts.shards = static_cast<int>(shards);
  }
  if (props.Contains(kCacheCapacityKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.capacity,
                             props.GetInt(kCacheCapacityKey));
    if (opts.capacity < 0) {
      return Status::InvalidArgument("serving.cache.capacity must be >= 0");
    }
  }
  if (props.Contains(kCacheTtlSecondsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.ttl_seconds,
                             props.GetDouble(kCacheTtlSecondsKey));
    if (opts.ttl_seconds < 0.0) {
      return Status::InvalidArgument(
          "serving.cache.ttl_seconds must be >= 0");
    }
  }
  if (props.Contains(kCacheQuantizeBitsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t bits,
                             props.GetInt(kCacheQuantizeBitsKey));
    if (bits < 0 || bits > 52) {
      return Status::InvalidArgument(
          "serving.cache.quantize_bits must be in [0, 52]");
    }
    opts.quantize_bits = static_cast<int>(bits);
  }
  return opts;
}

std::string CanonicalCacheKey(const std::string& system,
                              const rel::SqlOperator& op,
                              std::optional<core::ChoicePolicy> policy,
                              bool provenance, bool logical_phase,
                              int quantize_bits) {
  std::string key;
  CanonicalCacheKeyTo(system, op, policy, provenance, logical_phase,
                      quantize_bits, &key);
  return key;
}

void CanonicalCacheKeyTo(const std::string& system,
                         const rel::SqlOperator& op,
                         std::optional<core::ChoicePolicy> policy,
                         bool provenance, bool logical_phase,
                         int quantize_bits, std::string* out) {
  std::string& key = *out;
  key.clear();
  key.reserve(system.size() + 96);
  key += system;
  key.push_back('\0');  // unambiguous name/payload separator
  AppendByte(&key, static_cast<uint8_t>(op.type));
  // Only the active payload participates: the inactive members of the
  // tagged union are defaulted noise.
  switch (op.type) {
    case rel::OperatorType::kJoin: {
      const rel::JoinQuery& j = op.join;
      AppendI64(&key, j.left.num_rows);
      AppendI64(&key, j.left.row_bytes);
      AppendI64(&key, j.right.num_rows);
      AppendI64(&key, j.right.row_bytes);
      AppendI64(&key, j.left_projected_bytes);
      AppendI64(&key, j.right_projected_bytes);
      AppendI64(&key, j.output_rows);
      AppendByte(&key, static_cast<uint8_t>(j.is_equi_join));
      AppendByte(&key, static_cast<uint8_t>(j.left_bucketed_on_key));
      AppendByte(&key, static_cast<uint8_t>(j.right_bucketed_on_key));
      AppendDouble(&key, j.hot_key_fraction, quantize_bits);
      break;
    }
    case rel::OperatorType::kAggregation: {
      const rel::AggQuery& a = op.agg;
      AppendI64(&key, a.input.num_rows);
      AppendI64(&key, a.input.row_bytes);
      AppendI64(&key, a.output_rows);
      AppendI64(&key, a.output_row_bytes);
      AppendI64(&key, a.num_aggregates);
      break;
    }
    case rel::OperatorType::kScan: {
      const rel::ScanQuery& s = op.scan;
      AppendI64(&key, s.input.num_rows);
      AppendI64(&key, s.input.row_bytes);
      AppendDouble(&key, s.selectivity, quantize_bits);
      AppendI64(&key, s.projected_bytes);
      AppendI64(&key, s.output_rows);
      break;
    }
  }
  AppendByte(&key, policy.has_value()
                       ? static_cast<uint8_t>(*policy)
                       : uint8_t{0xff});
  AppendByte(&key, static_cast<uint8_t>(provenance));
  AppendByte(&key, static_cast<uint8_t>(logical_phase));
}

EstimateCache::EstimateCache(CacheOptions options)
    : options_(std::move(options)) {
  options_.shards = std::max(1, options_.shards);
  options_.capacity = std::max<int64_t>(0, options_.capacity);
  options_.quantize_bits = std::clamp(options_.quantize_bits, 0, 52);
  // Budget split evenly; a shard always holds at least one entry so a
  // shards > capacity misconfiguration degrades instead of disabling.
  per_shard_capacity_ =
      options_.capacity == 0
          ? 0
          : std::max<int64_t>(1, options_.capacity / options_.shards);
  shards_.reserve(options_.shards);
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

int EstimateCache::ShardOf(const std::string& key) const {
  return static_cast<int>(HashKey(key) % shards_.size());
}

std::optional<core::HybridEstimate> EstimateCache::Get(
    const std::string& key, uint64_t epoch, double now,
    const CacheCounters& counters, bool allow_stale, bool* served_stale) {
  if (served_stale != nullptr) *served_stale = false;
  const uint64_t hash = HashKey(key);
  Shard& shard = *shards_[hash % shards_.size()];
  std::optional<core::HybridEstimate> found;
  bool stale = false;
  bool expired = false;
  bool served_expired = false;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.index.find(hash);
    // A hash match with a different stored key is a collision: some other
    // key owns the slot, so this lookup is simply a miss.
    if (it != shard.index.end() && it->second->key == key) {
      Entry& entry = *it->second;
      if (entry.epoch != epoch) {
        // Epoch staleness is never forgiven: the value was computed from
        // superseded model weights, so "stale" here means wrong.
        stale = true;
      } else if (options_.ttl_seconds > 0.0 &&
                 now - entry.stored_now > options_.ttl_seconds) {
        if (allow_stale) {
          // Degraded serve: hand out the expired value and *keep* the
          // entry (no stored_now refresh — it stays expired for normal
          // lookups) so later degraded lookups still have an answer.
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
          found = entry.value;
          served_expired = true;
        } else {
          expired = true;
        }
      } else {
        // Hit: refresh recency and copy out under the lock.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        found = entry.value;
      }
      if (stale || expired) {
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
    }
  }
  if (found.has_value()) {
    // lint:relaxed-ok(stat counter; Stats reads are point-in-time by contract)
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (counters.hits != nullptr) counters.hits->Increment();
    if (served_expired) {
      // lint:relaxed-ok(stat counter; no data is published through it)
      stale_served_.fetch_add(1, std::memory_order_relaxed);
      if (counters.stale_served != nullptr) counters.stale_served->Increment();
      if (served_stale != nullptr) *served_stale = true;
    }
    return found;
  }
  // lint:relaxed-ok(stat counter; Stats reads are point-in-time by contract)
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (counters.misses != nullptr) counters.misses->Increment();
  if (stale) {
    // lint:relaxed-ok(stat counter; no data is published through it)
    stale_epoch_.fetch_add(1, std::memory_order_relaxed);
    if (counters.stale_epoch != nullptr) counters.stale_epoch->Increment();
  }
  if (expired) {
    // lint:relaxed-ok(stat counter; no data is published through it)
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (counters.evictions != nullptr) counters.evictions->Increment();
  }
  return std::nullopt;
}

void EstimateCache::Put(const std::string& key, uint64_t epoch, double now,
                        const core::HybridEstimate& value,
                        const CacheCounters& counters) {
  if (per_shard_capacity_ == 0) return;
  const uint64_t hash = HashKey(key);
  Shard& shard = *shards_[hash % shards_.size()];
  int64_t evicted = 0;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.index.find(hash);
    if (it != shard.index.end()) {
      // Same key: refresh in place (e.g. recomputed after an epoch bump).
      // Different key: a collision displaces the slot's previous owner.
      Entry& entry = *it->second;
      if (entry.key != key) {
        entry.key = key;
        ++evicted;
      }
      entry.value = value;
      entry.epoch = epoch;
      entry.stored_now = now;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, hash, value, epoch, now});
      shard.index.emplace(hash, shard.lru.begin());
      while (static_cast<int64_t>(shard.lru.size()) > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().hash);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    // lint:relaxed-ok(stat counter; no data is published through it)
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (counters.evictions != nullptr) {
      counters.evictions->Increment(evicted);
    }
  }
}

void EstimateCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t EstimateCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->lru.size();
  }
  return total;
}

CacheStats EstimateCache::Stats() const {
  CacheStats stats;
  // lint:relaxed-ok(stat reads; Stats is documented as a point-in-time view)
  stats.hits = hits_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.misses = misses_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.stale_epoch = stale_epoch_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.stale_served = stale_served_.load(std::memory_order_relaxed);
  stats.entries = static_cast<int64_t>(size());
  return stats;
}

}  // namespace intellisphere::serving
