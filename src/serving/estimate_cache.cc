#include "serving/estimate_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <functional>
#include <utility>

namespace intellisphere::serving {

namespace {

/// Binary key packing: fixed-width native-endian encodings written to a
/// stack buffer through a bump cursor, committed to the output string with
/// a single append. The encoding only needs to be injective and stable
/// within a process, not portable, so raw 8-byte memcpys are fine — and
/// the cursor keeps the hot batch path off std::string's per-append
/// capacity checks (the key build runs once per request in EstimateBatch).
struct KeyWriter {
  char* p;
  void U64(uint64_t v) {
    std::memcpy(p, &v, sizeof(v));
    p += sizeof(v);
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Byte(uint8_t v) { *p++ = static_cast<char>(v); }
  /// Keys a double by its bit pattern with the low `quantize_bits`
  /// mantissa bits dropped. bits = 0 is the identity (exact match only);
  /// the IEEE-754 layout keeps quantized patterns monotone within a
  /// sign+exponent bucket, so nearby magnitudes coalesce.
  void Double(double v, int quantize_bits) {
    uint64_t pattern = std::bit_cast<uint64_t>(v);
    if (quantize_bits > 0) {
      int bits = std::min(quantize_bits, 52);
      pattern &= ~((uint64_t{1} << bits) - 1);
    }
    U64(pattern);
  }
};

/// Upper bound on the operator-payload section of a canonical key: the
/// join layout (1 type byte + 7 int64s + 3 flag bytes + 1 double + 3 tail
/// bytes = 71) is the widest. static_asserted against the writer below.
constexpr size_t kMaxKeyPayload = 96;

uint64_t HashKey(const std::string& key) {
  return static_cast<uint64_t>(std::hash<std::string>{}(key));
}

}  // namespace

Result<CacheOptions> CacheOptions::FromProperties(const Properties& props) {
  CacheOptions opts;
  if (props.Contains(kCacheShardsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t shards, props.GetInt(kCacheShardsKey));
    if (shards < 1) {
      return Status::InvalidArgument("serving.cache.shards must be >= 1");
    }
    opts.shards = static_cast<int>(shards);
  }
  if (props.Contains(kCacheCapacityKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.capacity,
                             props.GetInt(kCacheCapacityKey));
    if (opts.capacity < 0) {
      return Status::InvalidArgument("serving.cache.capacity must be >= 0");
    }
  }
  if (props.Contains(kCacheTtlSecondsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.ttl_seconds,
                             props.GetDouble(kCacheTtlSecondsKey));
    if (opts.ttl_seconds < 0.0) {
      return Status::InvalidArgument(
          "serving.cache.ttl_seconds must be >= 0");
    }
  }
  if (props.Contains(kCacheQuantizeBitsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t bits,
                             props.GetInt(kCacheQuantizeBitsKey));
    if (bits < 0 || bits > 52) {
      return Status::InvalidArgument(
          "serving.cache.quantize_bits must be in [0, 52]");
    }
    opts.quantize_bits = static_cast<int>(bits);
  }
  if (props.Contains(kCacheTouchSampleKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t sample,
                             props.GetInt(kCacheTouchSampleKey));
    if (sample < 1) {
      return Status::InvalidArgument(
          "serving.cache.touch_sample must be >= 1");
    }
    opts.touch_sample = static_cast<int>(sample);
  }
  return opts;
}

std::string CanonicalCacheKey(const std::string& system,
                              const rel::SqlOperator& op,
                              std::optional<core::ChoicePolicy> policy,
                              bool provenance, bool logical_phase,
                              int quantize_bits) {
  std::string key;
  CanonicalCacheKeyTo(system, op, policy, provenance, logical_phase,
                      quantize_bits, &key);
  return key;
}

void CanonicalCacheKeyTo(const std::string& system,
                         const rel::SqlOperator& op,
                         std::optional<core::ChoicePolicy> policy,
                         bool provenance, bool logical_phase,
                         int quantize_bits, std::string* out) {
  char buf[kMaxKeyPayload];
  KeyWriter w{buf};
  w.Byte(static_cast<uint8_t>(op.type));
  // Only the active payload participates: the inactive members of the
  // tagged union are defaulted noise.
  switch (op.type) {
    case rel::OperatorType::kJoin: {
      const rel::JoinQuery& j = op.join;
      w.I64(j.left.num_rows);
      w.I64(j.left.row_bytes);
      w.I64(j.right.num_rows);
      w.I64(j.right.row_bytes);
      w.I64(j.left_projected_bytes);
      w.I64(j.right_projected_bytes);
      w.I64(j.output_rows);
      w.Byte(static_cast<uint8_t>(j.is_equi_join));
      w.Byte(static_cast<uint8_t>(j.left_bucketed_on_key));
      w.Byte(static_cast<uint8_t>(j.right_bucketed_on_key));
      w.Double(j.hot_key_fraction, quantize_bits);
      break;
    }
    case rel::OperatorType::kAggregation: {
      const rel::AggQuery& a = op.agg;
      w.I64(a.input.num_rows);
      w.I64(a.input.row_bytes);
      w.I64(a.output_rows);
      w.I64(a.output_row_bytes);
      w.I64(a.num_aggregates);
      break;
    }
    case rel::OperatorType::kScan: {
      const rel::ScanQuery& s = op.scan;
      w.I64(s.input.num_rows);
      w.I64(s.input.row_bytes);
      w.Double(s.selectivity, quantize_bits);
      w.I64(s.projected_bytes);
      w.I64(s.output_rows);
      break;
    }
  }
  w.Byte(policy.has_value() ? static_cast<uint8_t>(*policy) : uint8_t{0xff});
  w.Byte(static_cast<uint8_t>(provenance));
  w.Byte(static_cast<uint8_t>(logical_phase));
  const size_t payload = static_cast<size_t>(w.p - buf);
  // Join layout: type + 7 int64s + 1 double + 6 flag/tail bytes.
  static_assert(kMaxKeyPayload >= 1 + 8 * sizeof(uint64_t) + 6);
  std::string& key = *out;
  key.clear();
  key.reserve(system.size() + 1 + payload);
  key.append(system);
  key.push_back('\0');  // unambiguous name/payload separator
  key.append(buf, payload);
}

EstimateCache::EstimateCache(CacheOptions options)
    : options_(std::move(options)) {
  options_.shards = std::max(1, options_.shards);
  options_.capacity = std::max<int64_t>(0, options_.capacity);
  options_.quantize_bits = std::clamp(options_.quantize_bits, 0, 52);
  // Budget split evenly; a shard always holds at least one entry so a
  // shards > capacity misconfiguration degrades instead of disabling.
  per_shard_capacity_ =
      options_.capacity == 0
          ? 0
          : std::max<int64_t>(1, options_.capacity / options_.shards);
  options_.touch_sample = std::max(1, options_.touch_sample);
  // Seqlock mirror sizing: a power of two near the shard's entry budget so
  // the direct map rarely aliases, clamped so tiny caches still get a few
  // slots and huge ones don't burn unbounded memory (192 B per slot).
  slot_count_ = per_shard_capacity_ == 0
                    ? 0
                    : std::bit_ceil(static_cast<size_t>(
                          std::clamp<int64_t>(per_shard_capacity_, 8, 1024)));
  slot_mask_ = slot_count_ == 0 ? 0 : slot_count_ - 1;
  shards_.reserve(options_.shards);
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (slot_count_ > 0) {
      shard->slots = std::make_unique<FastSlot[]>(slot_count_);
      shard->owners.assign(slot_count_, Shard::SlotOwner{});
    }
    shards_.push_back(std::move(shard));
  }
}

bool EstimateCache::Packable(const std::string& key,
                             const core::HybridEstimate& v) {
  // Anything with variable-length provenance (sub-op candidate lists,
  // degradation reasons) or an oversized key keeps locked-path semantics.
  return key.size() <= kFastKeyCap && v.algorithm.size() <= kFastAlgoCap &&
         v.fell_back_reason.empty() && v.eliminated.empty() &&
         v.candidates.empty();
}

void EstimateCache::Pack(const std::string& key, uint64_t hash, uint64_t epoch,
                         double stored_now, const core::HybridEstimate& v,
                         PackedEstimate* out) {
  *out = PackedEstimate{};
  out->hash = hash;
  out->epoch = epoch;
  out->stored_now = stored_now;
  out->seconds = v.seconds;
  out->remedy_alpha = v.remedy_alpha;
  out->nn_seconds = v.nn_seconds;
  out->remedy_seconds = v.remedy_seconds;
  out->eliminated_count = static_cast<int32_t>(v.eliminated_count);
  out->approach = static_cast<uint8_t>(v.approach_used);
  out->flags = static_cast<uint8_t>((v.used_remedy ? 1u : 0u) |
                                    (v.fell_back_to_sub_op ? 2u : 0u));
  out->key_len = static_cast<uint8_t>(key.size());
  out->algo_len = static_cast<uint8_t>(v.algorithm.size());
  std::memcpy(out->key, key.data(), key.size());
  std::memcpy(out->algorithm, v.algorithm.data(), v.algorithm.size());
}

void EstimateCache::Unpack(const PackedEstimate& p, core::HybridEstimate* v) {
  *v = core::HybridEstimate{};
  v->seconds = p.seconds;
  v->approach_used = static_cast<core::CostingApproach>(p.approach);
  v->algorithm.assign(p.algorithm, p.algo_len);
  v->used_remedy = (p.flags & 1u) != 0;
  v->remedy_alpha = p.remedy_alpha;
  v->nn_seconds = p.nn_seconds;
  v->remedy_seconds = p.remedy_seconds;
  v->fell_back_to_sub_op = (p.flags & 2u) != 0;
  v->eliminated_count = p.eliminated_count;
}

void EstimateCache::WriteSlot(Shard& shard, size_t si,
                              const PackedEstimate* p) {
  // Seqlock write protocol (serialized per shard by shard.mu): odd version
  // while the payload words are in flux, even again once they are stable.
  // The final release pairs with the reader's acquire fence.
  FastSlot& slot = shard.slots[si];
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  uint64_t buf[kSlotWords] = {};
  if (p != nullptr) std::memcpy(buf, p, sizeof(*p));
  for (size_t w = 0; w < kSlotWords; ++w) {
    // lint:relaxed-ok(seqlock payload word; ordered by the seq release below)
    slot.words[w].store(buf[w], std::memory_order_relaxed);
  }
  slot.seq.fetch_add(1, std::memory_order_release);
}

void EstimateCache::PublishEntry(Shard& shard, Entry& e) {
  if (slot_count_ == 0) return;
  const size_t si = SlotIndex(e.hash);
  Shard::SlotOwner& owner = shard.owners[si];
  if (Packable(e.key, e.value)) {
    if (owner.used && owner.hash != e.hash) {
      // Steal the slot from its previous owner. Mark the victim unslotted
      // BEFORE overwriting: a reader must never observe unslotted == 0
      // while some index entry has no mirror, or it would declare a false
      // lock-free miss for that entry.
      auto prev = shard.index.find(owner.hash);
      if (prev != shard.index.end() && prev->second->slotted) {
        prev->second->slotted = false;
        shard.unslotted.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    PackedEstimate packed;
    Pack(e.key, e.hash, e.epoch, e.stored_now, e.value, &packed);
    WriteSlot(shard, si, &packed);
    owner.used = true;
    owner.hash = e.hash;
    if (!e.slotted) {
      e.slotted = true;
      shard.unslotted.fetch_sub(1, std::memory_order_acq_rel);
    }
  } else if (e.slotted) {
    // The entry was refreshed into an unpackable value: withdraw its
    // mirror (count first, then wipe — same invariant as above).
    e.slotted = false;
    shard.unslotted.fetch_add(1, std::memory_order_acq_rel);
    WriteSlot(shard, si, nullptr);
    owner.used = false;
  }
}

void EstimateCache::RetireEntry(Shard& shard, Entry& e) {
  if (slot_count_ == 0) return;
  if (e.slotted) {
    const size_t si = SlotIndex(e.hash);
    WriteSlot(shard, si, nullptr);
    shard.owners[si].used = false;
    e.slotted = false;
  } else {
    shard.unslotted.fetch_sub(1, std::memory_order_acq_rel);
  }
}

int EstimateCache::ShardOf(const std::string& key) const {
  return static_cast<int>(HashKey(key) % shards_.size());
}

std::optional<core::HybridEstimate> EstimateCache::Get(
    const std::string& key, uint64_t epoch, double now,
    const CacheCounters& counters, bool allow_stale, bool* served_stale) {
  if (served_stale != nullptr) *served_stale = false;
  if (per_shard_capacity_ == 0) {
    // Caching disabled: every lookup is a definitive miss, no shard touched.
    // lint:relaxed-ok(stat counter; Stats reads are point-in-time by contract)
    misses_.fetch_add(1, std::memory_order_relaxed);
    // lint:relaxed-ok(stat counter; no data is published through it)
    lockless_misses_.fetch_add(1, std::memory_order_relaxed);
    if (counters.misses != nullptr) counters.misses->Increment();
    return std::nullopt;
  }
  const uint64_t hash = HashKey(key);
  Shard& shard = *shards_[hash % shards_.size()];

  // ---- Optimistic lock-free probe (DESIGN.md §14) -------------------------
  // Snapshot the direct-mapped seqlock slot for this hash. Outcomes:
  //   * consistent snapshot holds this key, fresh epoch + TTL  -> hit, no lock
  //   * consistent snapshot shows the key absent AND every index entry is
  //     mirrored (unslotted == 0)                              -> miss, no lock
  //   * anything else (writer active twice, stale epoch/TTL, unmirrored
  //     entries exist)                                         -> locked probe
  // A lock-free miss racing a concurrent Put linearizes the Get before the
  // Put — exactly the probe/compute race the locked path already had.
  if (slot_count_ > 0) {
    FastSlot& slot = shard.slots[SlotIndex(hash)];
    for (int attempt = 0; attempt < 2; ++attempt) {
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;  // writer mid-publish: retry once
      PackedEstimate packed;
      bool mirrored = false;
      if (s1 != 0) {
        uint64_t buf[kSlotWords];
        // Fence-free seqlock reader (Boehm, "Can seqlocks get along with
        // programming language memory models?"): every payload word is an
        // acquire load, so the version recheck below cannot be reordered
        // before any of them. On x86 an acquire load is a plain mov, and
        // unlike atomic_thread_fence(acquire) gcc supports it under tsan.
        for (size_t w = 0; w < kSlotWords; ++w) {
          buf[w] = slot.words[w].load(std::memory_order_acquire);
        }
        // lint:relaxed-ok(version recheck; ordered by the acquire payload loads)
        if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
        std::memcpy(&packed, buf, sizeof(packed));
        mirrored = packed.key_len == key.size() && packed.hash == hash &&
                   packed.key_len > 0 &&
                   std::memcmp(packed.key, key.data(), packed.key_len) == 0;
      }
      if (!mirrored) {
        if (shard.unslotted.load(std::memory_order_acquire) == 0) {
          // Every live entry is mirrored and this key's slot says no:
          // a definitive miss without taking the mutex.
          // lint:relaxed-ok(stat counter; point-in-time by contract)
          misses_.fetch_add(1, std::memory_order_relaxed);
          // lint:relaxed-ok(stat counter; no data is published through it)
          lockless_misses_.fetch_add(1, std::memory_order_relaxed);
          if (counters.misses != nullptr) counters.misses->Increment();
          return std::nullopt;
        }
        break;  // unmirrored entries exist: only the locked index can say
      }
      if (packed.epoch != epoch) break;  // locked path erases + counts stale
      if (options_.ttl_seconds > 0.0 &&
          now - packed.stored_now > options_.ttl_seconds) {
        break;  // locked path owns expiry (and degraded allow_stale serves)
      }
      core::HybridEstimate value;
      Unpack(packed, &value);
      // lint:relaxed-ok(stat counter; point-in-time by contract)
      hits_.fetch_add(1, std::memory_order_relaxed);
      // lint:relaxed-ok(stat counter; no data is published through it)
      lockless_hits_.fetch_add(1, std::memory_order_relaxed);
      if (counters.hits != nullptr) counters.hits->Increment();
      // Sampled, non-blocking LRU touch: every touch_sample-th read of this
      // slot tries (and only tries) the shard lock to refresh recency, so
      // the steady-state hit path never waits on a mutex.
      // lint:relaxed-ok(sampling counter; drives no synchronization)
      const uint64_t reads = slot.reads.fetch_add(1, std::memory_order_relaxed);
      if ((reads + 1) % static_cast<uint64_t>(options_.touch_sample) == 0 &&
          shard.mu.TryLock()) {
        auto it = shard.index.find(hash);
        if (it != shard.index.end() && it->second->key == key) {
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
          // lint:relaxed-ok(stat counter; no data is published through it)
          lru_touches_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.mu.Unlock();
      }
      return value;
    }
  }
  // ---- Locked fallback ----------------------------------------------------
  // lint:relaxed-ok(stat counter; no data is published through it)
  locked_gets_.fetch_add(1, std::memory_order_relaxed);
  std::optional<core::HybridEstimate> found;
  bool stale = false;
  bool expired = false;
  bool served_expired = false;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.index.find(hash);
    // A hash match with a different stored key is a collision: some other
    // key owns the slot, so this lookup is simply a miss.
    if (it != shard.index.end() && it->second->key == key) {
      Entry& entry = *it->second;
      if (entry.epoch != epoch) {
        // Epoch staleness is never forgiven: the value was computed from
        // superseded model weights, so "stale" here means wrong.
        stale = true;
      } else if (options_.ttl_seconds > 0.0 &&
                 now - entry.stored_now > options_.ttl_seconds) {
        if (allow_stale) {
          // Degraded serve: hand out the expired value and *keep* the
          // entry (no stored_now refresh — it stays expired for normal
          // lookups) so later degraded lookups still have an answer.
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
          found = entry.value;
          served_expired = true;
        } else {
          expired = true;
        }
      } else {
        // Hit: refresh recency and copy out under the lock.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        found = entry.value;
      }
      if (stale || expired) {
        RetireEntry(shard, *it->second);
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
    }
  }
  if (found.has_value()) {
    // lint:relaxed-ok(stat counter; Stats reads are point-in-time by contract)
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (counters.hits != nullptr) counters.hits->Increment();
    if (served_expired) {
      // lint:relaxed-ok(stat counter; no data is published through it)
      stale_served_.fetch_add(1, std::memory_order_relaxed);
      if (counters.stale_served != nullptr) counters.stale_served->Increment();
      if (served_stale != nullptr) *served_stale = true;
    }
    return found;
  }
  // lint:relaxed-ok(stat counter; Stats reads are point-in-time by contract)
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (counters.misses != nullptr) counters.misses->Increment();
  if (stale) {
    // lint:relaxed-ok(stat counter; no data is published through it)
    stale_epoch_.fetch_add(1, std::memory_order_relaxed);
    if (counters.stale_epoch != nullptr) counters.stale_epoch->Increment();
  }
  if (expired) {
    // lint:relaxed-ok(stat counter; no data is published through it)
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (counters.evictions != nullptr) counters.evictions->Increment();
  }
  return std::nullopt;
}

void EstimateCache::Put(const std::string& key, uint64_t epoch, double now,
                        const core::HybridEstimate& value,
                        const CacheCounters& counters) {
  if (per_shard_capacity_ == 0) return;
  const uint64_t hash = HashKey(key);
  Shard& shard = *shards_[hash % shards_.size()];
  int64_t evicted = 0;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.index.find(hash);
    if (it != shard.index.end()) {
      // Same key: refresh in place (e.g. recomputed after an epoch bump).
      // Different key: a collision displaces the slot's previous owner.
      Entry& entry = *it->second;
      if (entry.key != key) {
        if (entry.slotted) {
          // The displaced identity's mirror is dead; the new identity
          // starts unmirrored until PublishEntry below. Count before
          // wiping so unslotted never understates.
          entry.slotted = false;
          shard.unslotted.fetch_add(1, std::memory_order_acq_rel);
          const size_t si = SlotIndex(entry.hash);
          WriteSlot(shard, si, nullptr);
          shard.owners[si].used = false;
        }
        entry.key = key;
        ++evicted;
      }
      entry.value = value;
      entry.epoch = epoch;
      entry.stored_now = now;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      PublishEntry(shard, entry);
    } else {
      shard.lru.push_front(Entry{key, hash, value, epoch, now});
      shard.index.emplace(hash, shard.lru.begin());
      // New entries are born unmirrored; PublishEntry flips them when the
      // value packs into a slot.
      shard.unslotted.fetch_add(1, std::memory_order_acq_rel);
      PublishEntry(shard, shard.lru.front());
      while (static_cast<int64_t>(shard.lru.size()) > per_shard_capacity_) {
        RetireEntry(shard, shard.lru.back());
        shard.index.erase(shard.lru.back().hash);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    // lint:relaxed-ok(stat counter; no data is published through it)
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (counters.evictions != nullptr) {
      counters.evictions->Increment(evicted);
    }
  }
}

void EstimateCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->unslotted.store(0, std::memory_order_release);
    // Every slot must be wiped (with the seqlock protocol, since readers
    // may be probing concurrently) or dropped entries would keep serving
    // from their stale mirrors.
    for (size_t si = 0; si < slot_count_; ++si) {
      WriteSlot(*shard, si, nullptr);
      shard->owners[si] = Shard::SlotOwner{};
    }
  }
}

size_t EstimateCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->lru.size();
  }
  return total;
}

CacheStats EstimateCache::Stats() const {
  CacheStats stats;
  // lint:relaxed-ok(stat reads; Stats is documented as a point-in-time view)
  stats.hits = hits_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.misses = misses_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.stale_epoch = stale_epoch_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.stale_served = stale_served_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.lockless_hits = lockless_hits_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.lockless_misses = lockless_misses_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.locked_gets = locked_gets_.load(std::memory_order_relaxed);
  // lint:relaxed-ok(see hits above)
  stats.lru_touches = lru_touches_.load(std::memory_order_relaxed);
  stats.entries = static_cast<int64_t>(size());
  return stats;
}

}  // namespace intellisphere::serving
