#include "serving/admission.h"

#include <algorithm>
#include <utility>

#include "util/json.h"

namespace intellisphere::serving {

namespace {

/// Cached serving.admission.* counter pointers (the hybrid.cc
/// EstimationInstruments pattern): Global() resolves once per process, a
/// context-supplied registry resolves per call.
struct AdmissionInstruments {
  Counter* admitted = nullptr;
  Counter* degraded = nullptr;
  Counter* shed_load = nullptr;
  Counter* shed_deadline = nullptr;
  Counter* tenant_throttled = nullptr;
  Counter* background_yield = nullptr;

  AdmissionInstruments() = default;
  explicit AdmissionInstruments(MetricsRegistry& r)
      : admitted(r.GetCounter("serving.admission.admitted")),
        degraded(r.GetCounter("serving.admission.degraded")),
        shed_load(r.GetCounter("serving.admission.shed_load")),
        shed_deadline(r.GetCounter("serving.admission.shed_deadline")),
        tenant_throttled(r.GetCounter("serving.admission.tenant_throttled")),
        background_yield(r.GetCounter("serving.admission.background_yield")) {}
};

const AdmissionInstruments& GlobalAdmissionInstruments() {
  static const AdmissionInstruments* instruments =
      new AdmissionInstruments(MetricsRegistry::Global());
  return *instruments;
}

void RecordDecision(const core::EstimateContext& ctx, size_t batch_size,
                    const AdmissionDecision& decision) {
  const AdmissionInstruments local =
      ctx.metrics != nullptr ? AdmissionInstruments(*ctx.metrics)
                             : AdmissionInstruments();
  const AdmissionInstruments& inst =
      ctx.metrics != nullptr ? local : GlobalAdmissionInstruments();
  const int64_t n = static_cast<int64_t>(batch_size);
  switch (decision.outcome) {
    case AdmissionOutcome::kServe:
      inst.admitted->Increment(n);
      break;
    case AdmissionOutcome::kServeDegraded:
      inst.degraded->Increment(n);
      break;
    case AdmissionOutcome::kShedLoad:
      inst.shed_load->Increment(n);
      break;
    case AdmissionOutcome::kShedDeadline:
      inst.shed_deadline->Increment(n);
      break;
  }
  if (decision.tenant_throttled) inst.tenant_throttled->Increment(n);
  if (decision.background_yield) inst.background_yield->Increment(n);
}

/// The shed statuses. Fixed texts (no interpolated depths) so shed errors
/// compare equal across runs and replicas.
Status ShedStatus(AdmissionOutcome outcome) {
  if (outcome == AdmissionOutcome::kShedDeadline) {
    return Status::DeadlineExceeded(
        "admission: queue model predicts completion past the request "
        "deadline");
  }
  return Status::ResourceExhausted(
      "admission: serving overloaded, request shed");
}

}  // namespace

Result<AdmissionOptions> AdmissionOptions::FromProperties(
    const Properties& props) {
  AdmissionOptions opts;
  if (props.Contains(kAdmissionEnabledKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.enabled,
                             props.GetBool(kAdmissionEnabledKey));
  }
  if (props.Contains(kAdmissionTenantRateKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.tenant_rate,
                             props.GetDouble(kAdmissionTenantRateKey));
  }
  if (props.Contains(kAdmissionTenantBurstKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.tenant_burst,
                             props.GetDouble(kAdmissionTenantBurstKey));
  }
  if (props.Contains(kAdmissionMaxQueueKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t max_queue,
                             props.GetInt(kAdmissionMaxQueueKey));
    opts.max_queue = static_cast<int>(max_queue);
  }
  if (props.Contains(kAdmissionDegradeFractionKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.degrade_fraction,
                             props.GetDouble(kAdmissionDegradeFractionKey));
  }
  if (props.Contains(kAdmissionBackgroundFractionKey)) {
    ISPHERE_ASSIGN_OR_RETURN(
        opts.background_fraction,
        props.GetDouble(kAdmissionBackgroundFractionKey));
  }
  if (props.Contains(kAdmissionServiceSecondsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(opts.service_seconds,
                             props.GetDouble(kAdmissionServiceSecondsKey));
  }
  ISPHERE_RETURN_NOT_OK(opts.Validate());
  return opts;
}

Status AdmissionOptions::Validate() const {
  if (!(tenant_rate > 0.0)) {
    return Status::InvalidArgument(
        "serving.admission.tenant_rate must be > 0");
  }
  if (!(tenant_burst > 0.0)) {
    return Status::InvalidArgument(
        "serving.admission.tenant_burst must be > 0");
  }
  if (max_queue < 1) {
    return Status::InvalidArgument(
        "serving.admission.max_queue must be >= 1");
  }
  if (!(degrade_fraction > 0.0) || degrade_fraction > 1.0) {
    return Status::InvalidArgument(
        "serving.admission.degrade_fraction must be in (0, 1]");
  }
  if (!(background_fraction > 0.0) || background_fraction > 1.0) {
    return Status::InvalidArgument(
        "serving.admission.background_fraction must be in (0, 1]");
  }
  if (!(service_seconds > 0.0)) {
    return Status::InvalidArgument(
        "serving.admission.service_seconds must be > 0");
  }
  return Status::OK();
}

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kServe:
      return "serve";
    case AdmissionOutcome::kServeDegraded:
      return "serve_degraded";
    case AdmissionOutcome::kShedLoad:
      return "shed_load";
    case AdmissionOutcome::kShedDeadline:
      return "shed_deadline";
  }
  return "unknown";
}

AdmissionController::AdmissionController(const EstimationService* service,
                                         AdmissionOptions options)
    : service_(service), options_(options) {}

double AdmissionController::QueueDepthLocked(double now) const {
  const double backlog = queue_clears_at_ - now;
  if (backlog <= 0.0) return 0.0;
  return backlog / options_.service_seconds;
}

AdmissionDecision AdmissionController::Admit(
    size_t batch_size, double now, const core::EstimateContext& ctx) const {
  AdmissionDecision decision;
  if (!options_.enabled || batch_size == 0) {
    if (batch_size > 0) {
      MutexLock lock(&mu_);
      tallies_.admitted += static_cast<int64_t>(batch_size);
    }
    return decision;
  }
  const double n = static_cast<double>(batch_size);
  MutexLock lock(&mu_);
  decision.queue_depth = QueueDepthLocked(now);

  // Deadline feasibility first: if the queue model already proves the
  // answer would arrive late, shed before burning tokens or queue slots.
  if (ctx.deadline_seconds > 0.0) {
    const double finish = std::max(queue_clears_at_, now) +
                          n * options_.service_seconds;
    if (finish > ctx.deadline_seconds) {
      decision.outcome = AdmissionOutcome::kShedDeadline;
      tallies_.shed_deadline += static_cast<int64_t>(batch_size);
      return decision;
    }
  }

  const double max_queue = static_cast<double>(options_.max_queue);
  if (decision.queue_depth + n > max_queue) {
    decision.outcome = AdmissionOutcome::kShedLoad;
    tallies_.shed_load += static_cast<int64_t>(batch_size);
    return decision;
  }
  if (ctx.priority == core::RequestPriority::kBackground &&
      decision.queue_depth + n >
          options_.background_fraction * max_queue) {
    decision.outcome = AdmissionOutcome::kShedLoad;
    decision.background_yield = true;
    tallies_.shed_load += static_cast<int64_t>(batch_size);
    tallies_.background_yield += static_cast<int64_t>(batch_size);
    return decision;
  }

  // Token bucket, refilled on the deployment clock. The clock may read
  // earlier than the last refill when concurrent tenants interleave;
  // refill only moves forward.
  Bucket* bucket;
  if (auto it = buckets_.find(ctx.tenant); it != buckets_.end()) {
    bucket = &it->second;
  } else {
    bucket = &buckets_[std::string(ctx.tenant)];
    bucket->tokens = options_.tenant_burst;
    bucket->last_refill = now;
  }
  if (now > bucket->last_refill) {
    bucket->tokens =
        std::min(options_.tenant_burst,
                 bucket->tokens +
                     (now - bucket->last_refill) * options_.tenant_rate);
    bucket->last_refill = now;
  }

  bool degraded = false;
  if (bucket->tokens >= n) {
    bucket->tokens -= n;
  } else {
    degraded = true;
    decision.tenant_throttled = true;
    tallies_.tenant_throttled += static_cast<int64_t>(batch_size);
  }
  if (decision.queue_depth + n > options_.degrade_fraction * max_queue) {
    degraded = true;
  }

  // Admitted: the virtual queue absorbs the batch (shed paths above never
  // advance it — work that is not done does not occupy the server).
  queue_clears_at_ =
      std::max(queue_clears_at_, now) + n * options_.service_seconds;
  if (degraded) {
    decision.outcome = AdmissionOutcome::kServeDegraded;
    tallies_.degraded += static_cast<int64_t>(batch_size);
  } else {
    tallies_.admitted += static_cast<int64_t>(batch_size);
  }
  return decision;
}

bool AdmissionController::ShouldYieldBackground(double now) const {
  if (!options_.enabled) return false;
  MutexLock lock(&mu_);
  return QueueDepthLocked(now) >
         options_.background_fraction *
             static_cast<double>(options_.max_queue);
}

Result<core::HybridEstimate> AdmissionController::Estimate(
    const EstimateRequest& request, const core::EstimateContext& ctx) const {
  const AdmissionDecision decision = Admit(1, request.now, ctx);
  RecordDecision(ctx, 1, decision);
  TraceSpan span = ctx.StartSpan("admission");
  if (span.enabled()) {
    span.SetString("tenant", std::string(ctx.tenant))
        .SetString("priority", core::RequestPriorityName(ctx.priority))
        .SetString("outcome", AdmissionOutcomeName(decision.outcome))
        .SetDouble("queue_depth", decision.queue_depth)
        .SetInt("size", 1);
  }
  switch (decision.outcome) {
    case AdmissionOutcome::kShedLoad:
    case AdmissionOutcome::kShedDeadline:
      return ShedStatus(decision.outcome);
    case AdmissionOutcome::kServeDegraded: {
      core::EstimateContext degraded = ctx.Under(span);
      degraded.admission_degraded = true;
      return service_->Estimate(request, degraded);
    }
    case AdmissionOutcome::kServe:
      break;
  }
  // Rung one: forward with the caller's context untouched (modulo span
  // nesting), so admitted-at-zero-load results are bit-identical to a
  // direct service call.
  return service_->Estimate(request, ctx.Under(span));
}

std::vector<Result<core::HybridEstimate>> AdmissionController::EstimateBatch(
    std::span<const EstimateRequest> requests,
    const core::EstimateContext& ctx) const {
  if (requests.empty()) return {};
  const double now = requests.front().now;
  const AdmissionDecision decision = Admit(requests.size(), now, ctx);
  RecordDecision(ctx, requests.size(), decision);
  TraceSpan span = ctx.StartSpan("admission");
  if (span.enabled()) {
    span.SetString("tenant", std::string(ctx.tenant))
        .SetString("priority", core::RequestPriorityName(ctx.priority))
        .SetString("outcome", AdmissionOutcomeName(decision.outcome))
        .SetDouble("queue_depth", decision.queue_depth)
        .SetInt("size", static_cast<int64_t>(requests.size()));
  }
  switch (decision.outcome) {
    case AdmissionOutcome::kShedLoad:
    case AdmissionOutcome::kShedDeadline:
      return std::vector<Result<core::HybridEstimate>>(
          requests.size(),
          Result<core::HybridEstimate>(ShedStatus(decision.outcome)));
    case AdmissionOutcome::kServeDegraded: {
      core::EstimateContext degraded = ctx.Under(span);
      degraded.admission_degraded = true;
      return service_->EstimateBatch(requests, degraded);
    }
    case AdmissionOutcome::kServe:
      break;
  }
  return service_->EstimateBatch(requests, ctx.Under(span));
}

AdmissionStats AdmissionController::Stats() const {
  MutexLock lock(&mu_);
  AdmissionStats stats = tallies_;
  stats.tenants_tracked = static_cast<int64_t>(buckets_.size());
  stats.queue_clears_at = queue_clears_at_;
  return stats;
}

MetricsSnapshot AdmissionController::StatsSnapshot() const {
  const AdmissionStats stats = Stats();
  MetricsSnapshot snap;
  snap.samples = {
      {"serving.admission.admitted", static_cast<double>(stats.admitted),
       "count"},
      {"serving.admission.degraded", static_cast<double>(stats.degraded),
       "count"},
      {"serving.admission.shed_load", static_cast<double>(stats.shed_load),
       "count"},
      {"serving.admission.shed_deadline",
       static_cast<double>(stats.shed_deadline), "count"},
      {"serving.admission.tenant_throttled",
       static_cast<double>(stats.tenant_throttled), "count"},
      {"serving.admission.background_yield",
       static_cast<double>(stats.background_yield), "count"},
      {"serving.admission.tenants", static_cast<double>(stats.tenants_tracked),
       "count"},
  };
  return snap;
}

std::string AdmissionController::ExplainJson() const {
  const AdmissionStats stats = Stats();
  std::string json = "{\n  \"admission\": {\n";
  json += std::string("    \"enabled\": ") +
          (options_.enabled ? "true" : "false") + ",\n";
  json += "    \"tenant_rate\": " + JsonNumberShort(options_.tenant_rate) +
          ",\n";
  json += "    \"tenant_burst\": " + JsonNumberShort(options_.tenant_burst) +
          ",\n";
  json += "    \"max_queue\": " + std::to_string(options_.max_queue) + ",\n";
  json += "    \"degrade_fraction\": " +
          JsonNumberShort(options_.degrade_fraction) + ",\n";
  json += "    \"background_fraction\": " +
          JsonNumberShort(options_.background_fraction) + ",\n";
  json += "    \"service_seconds\": " +
          JsonNumberShort(options_.service_seconds) + ",\n";
  json += "    \"queue_clears_at\": " +
          JsonNumberShort(stats.queue_clears_at) + ",\n";
  json += "    \"tenants\": " + std::to_string(stats.tenants_tracked) + ",\n";
  json += "    \"counters\": {\n";
  json += "      \"admitted\": " + std::to_string(stats.admitted) + ",\n";
  json += "      \"degraded\": " + std::to_string(stats.degraded) + ",\n";
  json += "      \"shed_load\": " + std::to_string(stats.shed_load) + ",\n";
  json += "      \"shed_deadline\": " + std::to_string(stats.shed_deadline) +
          ",\n";
  json += "      \"tenant_throttled\": " +
          std::to_string(stats.tenant_throttled) + ",\n";
  json += "      \"background_yield\": " +
          std::to_string(stats.background_yield) + "\n";
  json += "    }\n  }\n}\n";
  return json;
}

}  // namespace intellisphere::serving
