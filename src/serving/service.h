// The concurrent estimate-serving front-end (DESIGN.md §11): a thread-safe
// EstimationService wrapping the CostEstimator registry with the sharded
// estimate cache and a batch entry point that spreads cache misses over the
// shared util::ThreadPool.
//
// Concurrency contract: every const method here is safe for concurrent
// callers — the CostEstimator read path touches no mutable state, the cache
// locks per shard, and the pool serializes its queue. Mutation of the
// wrapped estimator (retraining, LogActual, profile swaps) must happen in
// an exclusive section with no estimate calls in flight; the model-epoch
// fence (CostEstimator::model_epoch) then guarantees no estimate computed
// before the mutation is ever served from the cache after it.
//
// Lock discipline (DESIGN.md §13): the service itself holds no locks — all
// shared mutable state lives behind the annotated Mutex/GUARDED_BY members
// of EstimateCache, MetricsRegistry, and HealthRegistry, each of which is
// self-contained (no component calls into another while holding its lock).

#ifndef INTELLISPHERE_SERVING_SERVICE_H_
#define INTELLISPHERE_SERVING_SERVICE_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/estimate_context.h"
#include "core/hybrid.h"
#include "relational/query.h"
#include "serving/estimate_cache.h"
#include "util/properties.h"
#include "util/runtime_metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace intellisphere::serving {

/// Properties key for the service's miss-computation parallelism
/// (documented in docs/CONFIG.md).
inline constexpr char kServingJobsKey[] = "serving.jobs";
/// Batch-miss grouping knobs (DESIGN.md §14, documented in docs/CONFIG.md).
inline constexpr char kServingBatchMinGroupSizeKey[] =
    "serving.batch.min_group_size";
inline constexpr char kServingBatchChunkRowsKey[] =
    "serving.batch.chunk_rows";

/// One estimate request: which system, which operator, at what deployment
/// time, under which (optional) choice-policy override. The request's
/// override wins over the context's.
struct EstimateRequest {
  std::string system;
  rel::SqlOperator op;
  double now = 0.0;
  std::optional<core::ChoicePolicy> policy_override;
};

struct ServiceOptions {
  CacheOptions cache;
  /// Worker threads for batch cache misses; 0 = HardwareConcurrency(),
  /// 1 = compute misses inline on the caller's thread.
  int jobs = 0;
  /// Circuit-breaker registry consulted per request (DESIGN.md §12). When
  /// the target system's breaker is open, a TTL-expired cache entry is
  /// served rather than discarded (flagged "breaker_open:served_stale"),
  /// and estimator results degrade through the fallback ladder. Used only
  /// when the per-call EstimateContext carries no registry of its own; a
  /// wiring concern, so not read from Properties. Must outlive the
  /// service; null disables breaker awareness.
  const remote::HealthRegistry* health = nullptr;
  /// Distinct-key misses routed to the same (system, logical-operator
  /// model) are computed through CostEstimator::EstimateBatch — one GEMM
  /// per network layer for the whole group — when at least this many
  /// distinct keys share the model. Smaller groups stay scalar (the batch
  /// assembly overhead outweighs one fused forward pass). Must be >= 1.
  int batch_min_group_size = 2;
  /// Upper bound on rows per batched estimator call; larger model groups
  /// are chunked so pool workers share the work. Must be >= 1.
  int batch_chunk_rows = 256;

  /// Reads serving.jobs, serving.batch.*, and the serving.cache.* keys;
  /// absent keys keep their defaults.
  [[nodiscard]] static Result<ServiceOptions> FromProperties(
      const Properties& props);
};

/// Thread-safe estimation front-end over a CostEstimator.
class EstimationService {
 public:
  /// `estimator` must outlive the service and must not be mutated while
  /// estimate calls are in flight (see the header comment).
  explicit EstimationService(const core::CostEstimator* estimator,
                             ServiceOptions options = {});

  /// Single-request path: cache lookup, then compute-and-fill on a miss.
  /// Cache hits return without invoking the estimator, so they emit no
  /// estimate.* spans or counters — serving.cache.hits is the signal.
  /// A context whose deadline already passed at request.now is rejected
  /// with DeadlineExceeded before the cache is touched; an
  /// admission-degraded context may be answered from a stale entry
  /// ("admission_overload:served_stale") and never fills the cache
  /// (DESIGN.md §17).
  [[nodiscard]] Result<core::HybridEstimate> Estimate(
      const EstimateRequest& request,
      const core::EstimateContext& ctx = {}) const;

  /// Batch path: deduplicates requests with identical canonical keys — one
  /// cache probe and at most one computation per distinct key, with the
  /// first occurrence's probe answering every duplicate — then groups the
  /// distinct-key misses by
  /// (system, logical-operator model) and computes each group through
  /// CostEstimator::EstimateBatch — one fused GEMM per network layer for
  /// the whole group (DESIGN.md §14) — falling back to scalar computation
  /// for small groups, non-logical routes, open breakers, and batch-level
  /// failures (so per-request errors surface exactly as the scalar path
  /// would). Units are fanned out over the service's pool (inline when
  /// jobs = 1). Results are returned in request order, bit-identical to
  /// the single-request path; an estimator error for one request does not
  /// fail the batch. Requests whose deadline already passed get a
  /// per-request DeadlineExceeded with no cache traffic, exactly like the
  /// scalar path. Emits a `serving.batch` span with
  /// size/hits/misses/unique_misses/deduped/batched attributes when the
  /// context has a trace sink.
  [[nodiscard]] std::vector<Result<core::HybridEstimate>> EstimateBatch(
      std::span<const EstimateRequest> requests,
      const core::EstimateContext& ctx = {}) const;

  /// Cumulative cache statistics.
  CacheStats cache_stats() const { return cache_.Stats(); }

  /// Drops every cached entry (epoch fencing makes this unnecessary for
  /// correctness; exposed for tests and memory pressure).
  void InvalidateCache() const { cache_.Clear(); }

  /// Cache statistics in the BENCH_<name>.json metric shape
  /// (serving.cache.* samples), ready for AppendMetricsSnapshot-style use.
  MetricsSnapshot StatsSnapshot() const;

  /// Serving-state JSON for EXPLAIN tooling: cache configuration, live
  /// statistics, and the wrapped estimator's current model epoch. Written
  /// to EXPLAIN_serving.json by examples/explain_serving and validated by
  /// scripts/check_explain_json.py.
  std::string ExplainJson() const;

  const ServiceOptions& options() const { return options_; }
  const core::CostEstimator* estimator() const { return estimator_; }

 private:
  /// Canonical key for a request, or empty when the system has no profile
  /// (uncacheable; the compute path will surface the NotFound).
  std::string KeyFor(const EstimateRequest& request,
                     const core::EstimateContext& ctx) const;

  /// Buffer-reusing variant: rebuilds the key into `*out` (empty when
  /// uncacheable) without allocating on the batch fast path.
  void KeyForTo(const EstimateRequest& request,
                const core::EstimateContext& ctx, std::string* out) const;

  /// Core of KeyForTo with the profile already resolved (`nullptr` =
  /// uncacheable), letting EstimateBatch memoize the per-system profile
  /// lookup across consecutive requests.
  void KeyWithProfileTo(const EstimateRequest& request,
                        const core::EstimateContext& ctx,
                        const core::CostingProfile* profile,
                        std::string* out) const;

  /// The per-request context handed to the estimator: the batch context
  /// with the request's clock and effective policy override.
  core::EstimateContext RequestContext(const EstimateRequest& request,
                                       const core::EstimateContext& ctx) const;

  const core::CostEstimator* estimator_;
  ServiceOptions options_;
  /// Caching is a hidden side effect of the logically-const read path.
  mutable EstimateCache cache_;
  /// Null when jobs <= 1; ThreadPool::Submit is thread-safe, so concurrent
  /// batches share the pool.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace intellisphere::serving

#endif  // INTELLISPHERE_SERVING_SERVICE_H_
