#include "serving/service.h"

#include <cstddef>
#include <unordered_map>
#include <utility>

#include "remote/health.h"
#include "util/json.h"

namespace intellisphere::serving {

namespace {

/// Cached serving.cache.* counter pointers, mirroring hybrid.cc's
/// EstimationInstruments pattern: the Global() set resolves once per
/// process; a context-supplied registry (tests) resolves per call.
struct ServingInstruments {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* evictions = nullptr;
  Counter* stale_epoch = nullptr;
  Counter* stale_served = nullptr;

  ServingInstruments() = default;
  explicit ServingInstruments(MetricsRegistry& r)
      : hits(r.GetCounter("serving.cache.hits")),
        misses(r.GetCounter("serving.cache.misses")),
        evictions(r.GetCounter("serving.cache.evictions")),
        stale_epoch(r.GetCounter("serving.cache.stale_epoch")),
        stale_served(r.GetCounter("serving.cache.stale_served")) {}

  CacheCounters AsCacheCounters() const {
    return CacheCounters{hits, misses, evictions, stale_epoch, stale_served};
  }
};

const ServingInstruments& GlobalServingInstruments() {
  static const ServingInstruments* instruments =
      new ServingInstruments(MetricsRegistry::Global());
  return *instruments;
}

CacheCounters CountersFor(const core::EstimateContext& ctx) {
  if (ctx.metrics != nullptr) {
    return ServingInstruments(*ctx.metrics).AsCacheCounters();
  }
  return GlobalServingInstruments().AsCacheCounters();
}

}  // namespace

Result<ServiceOptions> ServiceOptions::FromProperties(
    const Properties& props) {
  ServiceOptions opts;
  ISPHERE_ASSIGN_OR_RETURN(opts.cache, CacheOptions::FromProperties(props));
  if (props.Contains(kServingJobsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t jobs, props.GetInt(kServingJobsKey));
    if (jobs < 0) {
      return Status::InvalidArgument("serving.jobs must be >= 0");
    }
    opts.jobs = static_cast<int>(jobs);
  }
  return opts;
}

EstimationService::EstimationService(const core::CostEstimator* estimator,
                                     ServiceOptions options)
    : estimator_(estimator),
      options_(std::move(options)),
      cache_(options_.cache) {
  if (options_.jobs == 0) options_.jobs = HardwareConcurrency();
  if (options_.jobs > 1) pool_ = std::make_unique<ThreadPool>(options_.jobs);
}

std::string EstimationService::KeyFor(const EstimateRequest& request,
                                      const core::EstimateContext& ctx) const {
  std::string key;
  KeyForTo(request, ctx, &key);
  return key;
}

void EstimationService::KeyForTo(const EstimateRequest& request,
                                 const core::EstimateContext& ctx,
                                 std::string* out) const {
  auto profile = estimator_->GetProfile(request.system);
  KeyWithProfileTo(request, ctx, profile.ok() ? profile.value() : nullptr,
                   out);
}

void EstimationService::KeyWithProfileTo(const EstimateRequest& request,
                                         const core::EstimateContext& ctx,
                                         const core::CostingProfile* p,
                                         std::string* out) const {
  if (p == nullptr) {
    out->clear();
    return;
  }
  // Effective policy: the request's override, else the context's, else the
  // profile's configured sub-op policy (the value the estimator would use).
  std::optional<core::ChoicePolicy> policy = request.policy_override;
  if (!policy.has_value()) policy = ctx.policy_override;
  if (!policy.has_value() && p->has_sub_op()) {
    policy = p->sub_op().value()->policy();
  }
  const bool logical_phase =
      p->approach() == core::CostingApproach::kSubOpThenLogicalOp &&
      request.now >= p->switch_time();
  CanonicalCacheKeyTo(request.system, request.op, policy, ctx.provenance(),
                      logical_phase, options_.cache.quantize_bits, out);
}

core::EstimateContext EstimationService::RequestContext(
    const EstimateRequest& request, const core::EstimateContext& ctx) const {
  core::EstimateContext out = ctx;
  out.now = request.now;
  if (request.policy_override.has_value()) {
    out.policy_override = request.policy_override;
  }
  // The service's breaker registry backstops a context without one, so the
  // estimator's degradation ladder engages even for callers that never
  // heard of health tracking.
  if (out.health == nullptr) out.health = options_.health;
  return out;
}

Result<core::HybridEstimate> EstimationService::Estimate(
    const EstimateRequest& request, const core::EstimateContext& ctx) const {
  const CacheCounters counters = CountersFor(ctx);
  // The epoch is captured *before* the cache probe and the computation, so
  // a retrain racing this call can only make the stored entry stale, never
  // let a pre-retrain value masquerade as fresh.
  const uint64_t epoch = estimator_->model_epoch();
  const std::string key = KeyFor(request, ctx);
  const remote::HealthRegistry* health =
      ctx.health != nullptr ? ctx.health : options_.health;
  const bool breaker_open =
      health != nullptr && health->IsOpen(request.system, request.now);
  if (!key.empty()) {
    bool served_stale = false;
    if (auto hit = cache_.Get(key, epoch, request.now, counters,
                              /*allow_stale=*/breaker_open, &served_stale)) {
      if (served_stale) {
        core::HybridEstimate est = *std::move(hit);
        est.fell_back_reason = "breaker_open:served_stale";
        return est;
      }
      return *std::move(hit);
    }
  }
  auto result =
      estimator_->Estimate(request.system, request.op,
                           RequestContext(request, ctx));
  // Degraded results (non-empty fell_back_reason) are never cached: once
  // the breaker closes, callers should get the real estimate again, not a
  // memoized fallback.
  if (result.ok() && !key.empty() && result.value().fell_back_reason.empty()) {
    cache_.Put(key, epoch, request.now, result.value(), counters);
  }
  return result;
}

std::vector<Result<core::HybridEstimate>> EstimationService::EstimateBatch(
    std::span<const EstimateRequest> requests,
    const core::EstimateContext& ctx) const {
  const CacheCounters counters = CountersFor(ctx);
  TraceSpan batch = ctx.StartSpan("serving.batch");
  const core::EstimateContext bctx = ctx.Under(batch);
  const uint64_t epoch = estimator_->model_epoch();

  const size_t n = requests.size();
  // "unfilled" fits in the small-string buffer, so the prefill does not
  // allocate per slot; every slot is overwritten below.
  std::vector<Result<core::HybridEstimate>> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    results.emplace_back(Status::Internal("unfilled"));
  }

  // Pass 1: probe the cache, group the misses by canonical key. One group
  // per distinct key — duplicates ride along as extra result indices and
  // are computed exactly once. Requests whose key cannot be built (unknown
  // system) each get their own keyless group so errors stay per-request.
  // The scratch buffer keeps the hit path allocation-free: a key string is
  // materialized only when a miss creates a group.
  struct MissGroup {
    size_t first_index;
    std::string key;  ///< empty for uncacheable requests
    std::vector<size_t> indices;
  };
  std::vector<MissGroup> groups;
  std::unordered_map<std::string, size_t> key_to_group;
  std::string scratch;
  // Per-batch memo of the last (system -> profile, breaker state)
  // resolution: batches overwhelmingly target one system, and the
  // estimator may not be mutated mid-batch (class contract), so the
  // pointer stays valid for the batch. The breaker memo tolerates
  // intra-batch `now` variance — it gates a degradation decision (flagged
  // in the result), never a correctness one.
  const remote::HealthRegistry* health =
      ctx.health != nullptr ? ctx.health : options_.health;
  const std::string* memo_system = nullptr;
  const core::CostingProfile* memo_profile = nullptr;
  bool memo_breaker_open = false;
  int64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (memo_system == nullptr || *memo_system != requests[i].system) {
      auto profile = estimator_->GetProfile(requests[i].system);
      memo_profile = profile.ok() ? profile.value() : nullptr;
      memo_breaker_open = health != nullptr &&
                          health->IsOpen(requests[i].system, requests[i].now);
      memo_system = &requests[i].system;
    }
    KeyWithProfileTo(requests[i], bctx, memo_profile, &scratch);
    if (!scratch.empty()) {
      bool served_stale = false;
      if (auto hit = cache_.Get(scratch, epoch, requests[i].now, counters,
                                /*allow_stale=*/memo_breaker_open,
                                &served_stale)) {
        core::HybridEstimate est = *std::move(hit);
        if (served_stale) est.fell_back_reason = "breaker_open:served_stale";
        results[i] = std::move(est);
        ++hits;
        continue;
      }
      auto [it, inserted] = key_to_group.try_emplace(scratch, groups.size());
      if (!inserted) {
        groups[it->second].indices.push_back(i);
        continue;
      }
    }
    groups.push_back(MissGroup{i, scratch, {i}});
  }

  // Pass 2: compute each group's representative request, fanned out over
  // the pool (inline when jobs = 1 or there is at most one miss). The
  // estimator read path is const and touches no shared mutable state; the
  // trace sink and registries are thread-safe by contract (DESIGN.md §9).
  const size_t num_groups = groups.size();
  ThreadPool* pool =
      (pool_ != nullptr && num_groups > 1) ? pool_.get() : nullptr;
  std::vector<Result<core::HybridEstimate>> computed = RunIndexed(
      pool, num_groups, [&](size_t g) -> Result<core::HybridEstimate> {
        const EstimateRequest& request = requests[groups[g].first_index];
        return estimator_->Estimate(request.system, request.op,
                                    RequestContext(request, bctx));
      });

  // Pass 3: fill the cache and fan results back out to duplicates.
  // Degraded results (non-empty fell_back_reason) are never cached — see
  // Estimate().
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t rep = groups[g].first_index;
    if (computed[g].ok() && !groups[g].key.empty() &&
        computed[g].value().fell_back_reason.empty()) {
      cache_.Put(groups[g].key, epoch, requests[rep].now, computed[g].value(),
                 counters);
    }
    for (size_t idx : groups[g].indices) {
      results[idx] = computed[g];
    }
  }

  if (batch.enabled()) {
    const int64_t misses = static_cast<int64_t>(n) - hits;
    batch.SetInt("size", static_cast<int64_t>(n))
        .SetInt("hits", hits)
        .SetInt("misses", misses)
        .SetInt("unique_misses", static_cast<int64_t>(num_groups))
        .SetInt("deduped", misses - static_cast<int64_t>(num_groups));
  }
  return results;
}

MetricsSnapshot EstimationService::StatsSnapshot() const {
  const CacheStats stats = cache_.Stats();
  MetricsSnapshot snap;
  snap.samples = {
      {"serving.cache.hits", static_cast<double>(stats.hits), "count"},
      {"serving.cache.misses", static_cast<double>(stats.misses), "count"},
      {"serving.cache.evictions", static_cast<double>(stats.evictions),
       "count"},
      {"serving.cache.stale_epoch", static_cast<double>(stats.stale_epoch),
       "count"},
      {"serving.cache.stale_served", static_cast<double>(stats.stale_served),
       "count"},
      {"serving.cache.entries", static_cast<double>(stats.entries), "count"},
      {"serving.cache.hit_rate", stats.HitRate(), "ratio"},
  };
  return snap;
}

std::string EstimationService::ExplainJson() const {
  const CacheStats stats = cache_.Stats();
  std::string json = "{\n  \"serving\": {\n";
  json += "    \"model_epoch\": " +
          std::to_string(estimator_->model_epoch()) + ",\n";
  json += "    \"jobs\": " + std::to_string(options_.jobs) + ",\n";
  json += "    \"cache\": {\n";
  json += "      \"shards\": " + std::to_string(options_.cache.shards) +
          ",\n";
  json += "      \"capacity\": " + std::to_string(options_.cache.capacity) +
          ",\n";
  json += "      \"ttl_seconds\": " + JsonNumberShort(
              options_.cache.ttl_seconds) + ",\n";
  json += "      \"quantize_bits\": " +
          std::to_string(options_.cache.quantize_bits) + ",\n";
  json += "      \"entries\": " + std::to_string(stats.entries) + ",\n";
  json += "      \"hits\": " + std::to_string(stats.hits) + ",\n";
  json += "      \"misses\": " + std::to_string(stats.misses) + ",\n";
  json += "      \"evictions\": " + std::to_string(stats.evictions) + ",\n";
  json += "      \"stale_epoch\": " + std::to_string(stats.stale_epoch) +
          ",\n";
  json += "      \"stale_served\": " + std::to_string(stats.stale_served) +
          ",\n";
  json += "      \"hit_rate\": " + JsonNumberShort(stats.HitRate()) + "\n";
  json += "    },\n";
  const int64_t tracked =
      options_.health != nullptr
          ? static_cast<int64_t>(options_.health->TrackedCount())
          : 0;
  const int64_t open =
      options_.health != nullptr
          ? static_cast<int64_t>(options_.health->OpenCount())
          : 0;
  json += "    \"health\": {\n";
  json += "      \"tracked\": " + std::to_string(tracked) + ",\n";
  json += "      \"open\": " + std::to_string(open) + "\n";
  json += "    }\n  }\n}\n";
  return json;
}

}  // namespace intellisphere::serving
