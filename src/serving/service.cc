#include "serving/service.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <functional>
#include <map>
#include <string_view>
#include <utility>

#include "remote/health.h"
#include "util/json.h"

namespace intellisphere::serving {

namespace {

/// Cached serving.cache.* counter pointers, mirroring hybrid.cc's
/// EstimationInstruments pattern: the Global() set resolves once per
/// process; a context-supplied registry (tests) resolves per call.
struct ServingInstruments {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* evictions = nullptr;
  Counter* stale_epoch = nullptr;
  Counter* stale_served = nullptr;

  ServingInstruments() = default;
  explicit ServingInstruments(MetricsRegistry& r)
      : hits(r.GetCounter("serving.cache.hits")),
        misses(r.GetCounter("serving.cache.misses")),
        evictions(r.GetCounter("serving.cache.evictions")),
        stale_epoch(r.GetCounter("serving.cache.stale_epoch")),
        stale_served(r.GetCounter("serving.cache.stale_served")) {}

  CacheCounters AsCacheCounters() const {
    return CacheCounters{hits, misses, evictions, stale_epoch, stale_served};
  }
};

const ServingInstruments& GlobalServingInstruments() {
  static const ServingInstruments* instruments =
      new ServingInstruments(MetricsRegistry::Global());
  return *instruments;
}

CacheCounters CountersFor(const core::EstimateContext& ctx) {
  if (ctx.metrics != nullptr) {
    return ServingInstruments(*ctx.metrics).AsCacheCounters();
  }
  return GlobalServingInstruments().AsCacheCounters();
}

}  // namespace

Result<ServiceOptions> ServiceOptions::FromProperties(
    const Properties& props) {
  ServiceOptions opts;
  ISPHERE_ASSIGN_OR_RETURN(opts.cache, CacheOptions::FromProperties(props));
  if (props.Contains(kServingJobsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t jobs, props.GetInt(kServingJobsKey));
    if (jobs < 0) {
      return Status::InvalidArgument("serving.jobs must be >= 0");
    }
    opts.jobs = static_cast<int>(jobs);
  }
  if (props.Contains(kServingBatchMinGroupSizeKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t size,
                             props.GetInt(kServingBatchMinGroupSizeKey));
    if (size < 1) {
      return Status::InvalidArgument(
          "serving.batch.min_group_size must be >= 1");
    }
    opts.batch_min_group_size = static_cast<int>(size);
  }
  if (props.Contains(kServingBatchChunkRowsKey)) {
    ISPHERE_ASSIGN_OR_RETURN(int64_t rows,
                             props.GetInt(kServingBatchChunkRowsKey));
    if (rows < 1) {
      return Status::InvalidArgument("serving.batch.chunk_rows must be >= 1");
    }
    opts.batch_chunk_rows = static_cast<int>(rows);
  }
  return opts;
}

EstimationService::EstimationService(const core::CostEstimator* estimator,
                                     ServiceOptions options)
    : estimator_(estimator),
      options_(std::move(options)),
      cache_(options_.cache) {
  if (options_.jobs == 0) options_.jobs = HardwareConcurrency();
  if (options_.jobs > 1) pool_ = std::make_unique<ThreadPool>(options_.jobs);
}

std::string EstimationService::KeyFor(const EstimateRequest& request,
                                      const core::EstimateContext& ctx) const {
  std::string key;
  KeyForTo(request, ctx, &key);
  return key;
}

void EstimationService::KeyForTo(const EstimateRequest& request,
                                 const core::EstimateContext& ctx,
                                 std::string* out) const {
  auto profile = estimator_->GetProfile(request.system);
  KeyWithProfileTo(request, ctx, profile.ok() ? profile.value() : nullptr,
                   out);
}

void EstimationService::KeyWithProfileTo(const EstimateRequest& request,
                                         const core::EstimateContext& ctx,
                                         const core::CostingProfile* p,
                                         std::string* out) const {
  if (p == nullptr) {
    out->clear();
    return;
  }
  // Effective policy: the request's override, else the context's, else the
  // profile's configured sub-op policy (the value the estimator would use).
  std::optional<core::ChoicePolicy> policy = request.policy_override;
  if (!policy.has_value()) policy = ctx.policy_override;
  if (!policy.has_value() && p->has_sub_op()) {
    policy = p->sub_op().value()->policy();
  }
  const bool logical_phase =
      p->approach() == core::CostingApproach::kSubOpThenLogicalOp &&
      request.now >= p->switch_time();
  CanonicalCacheKeyTo(request.system, request.op, policy, ctx.provenance(),
                      logical_phase, options_.cache.quantize_bits, out);
}

core::EstimateContext EstimationService::RequestContext(
    const EstimateRequest& request, const core::EstimateContext& ctx) const {
  core::EstimateContext out = ctx;
  out.now = request.now;
  if (request.policy_override.has_value()) {
    out.policy_override = request.policy_override;
  }
  // The service's breaker registry backstops a context without one, so the
  // estimator's degradation ladder engages even for callers that never
  // heard of health tracking.
  if (out.health == nullptr) out.health = options_.health;
  return out;
}

Result<core::HybridEstimate> EstimationService::Estimate(
    const EstimateRequest& request, const core::EstimateContext& ctx) const {
  // Deadline gate (DESIGN.md §17): a request whose deadline already passed
  // on the deployment clock is rejected before the cache is touched — no
  // probe, no fill — so expired work can neither publish into nor be
  // answered from shared state.
  if (ctx.DeadlineExpiredAt(request.now)) {
    return Status::DeadlineExceeded("estimate deadline expired before serving");
  }
  const CacheCounters counters = CountersFor(ctx);
  // The epoch is captured *before* the cache probe and the computation, so
  // a retrain racing this call can only make the stored entry stale, never
  // let a pre-retrain value masquerade as fresh.
  const uint64_t epoch = estimator_->model_epoch();
  const std::string key = KeyFor(request, ctx);
  const remote::HealthRegistry* health =
      ctx.health != nullptr ? ctx.health : options_.health;
  const bool breaker_open =
      health != nullptr && health->IsOpen(request.system, request.now);
  // A TTL-expired entry beats recomputing when the backend is unreachable
  // (breaker open) or the serving layer itself is overloaded (admission
  // degraded); the flag names whichever cause applies (breaker wins).
  const bool allow_stale = breaker_open || ctx.admission_degraded;
  if (!key.empty()) {
    bool served_stale = false;
    if (auto hit = cache_.Get(key, epoch, request.now, counters,
                              allow_stale, &served_stale)) {
      if (served_stale) {
        core::HybridEstimate est = *std::move(hit);
        est.fell_back_reason = breaker_open
                                   ? "breaker_open:served_stale"
                                   : "admission_overload:served_stale";
        return est;
      }
      return *std::move(hit);
    }
  }
  auto result =
      estimator_->Estimate(request.system, request.op,
                           RequestContext(request, ctx));
  // Degraded results (non-empty fell_back_reason) are never cached: once
  // the breaker closes, callers should get the real estimate again, not a
  // memoized fallback. Admission-degraded requests never fill the cache
  // either, even when their answer happens to be full fidelity (sub-op
  // profiles): overload outcomes must not become durable state.
  if (result.ok() && !key.empty() &&
      result.value().fell_back_reason.empty() && !ctx.admission_degraded) {
    cache_.Put(key, epoch, request.now, result.value(), counters);
  }
  return result;
}

std::vector<Result<core::HybridEstimate>> EstimationService::EstimateBatch(
    std::span<const EstimateRequest> requests,
    const core::EstimateContext& ctx) const {
  const CacheCounters counters = CountersFor(ctx);
  TraceSpan batch = ctx.StartSpan("serving.batch");
  const core::EstimateContext bctx = ctx.Under(batch);
  const uint64_t epoch = estimator_->model_epoch();

  const size_t n = requests.size();

  // Pass 1: group the requests by canonical key, probing the cache once
  // per distinct key — the first occurrence's probe decides for every
  // duplicate in the batch (the canonical key covers everything that can
  // change the answer). One group per distinct key; misses are computed
  // exactly once in pass 2. Requests whose key cannot be built (unknown
  // system) each get their own keyless group so errors stay per-request.
  // The scratch buffer keeps the duplicate path allocation-free: a key
  // string is materialized only when a distinct key creates a group.
  struct MissGroup {
    size_t first_index;
    std::string key;  ///< empty for uncacheable requests
    /// Captured from the pass-1 memo so pass 2 can group by model without
    /// re-resolving the profile (null = unknown system).
    const core::CostingProfile* profile = nullptr;
    bool breaker_open = false;
    /// Answered by a cache hit in pass 1: computed[g] already holds the
    /// value; pass 2 skips the group, pass 3 only fans out.
    bool from_cache = false;
    /// Answered with an error in pass 1 (expired deadline): keyless, never
    /// computed, never cached.
    bool preanswered = false;
  };
  std::vector<MissGroup> groups;
  // One answer slot per group: cache hits land here in pass 1, computed
  // misses in pass 2, and the final fan-out copies computed[group_of[i]]
  // into results exactly once per request — no per-slot prefill churn.
  std::vector<Result<core::HybridEstimate>> computed;
  std::vector<uint32_t> group_of(n, 0);
  // Worst case is all-distinct (one group per request), but batches skew
  // heavily toward repeats; 64 covers typical fan-in without a realloc.
  groups.reserve(std::min<size_t>(n, 64));
  computed.reserve(std::min<size_t>(n, 64));
  // Open-addressed dedup table (linear probing, power-of-two size, < 50%
  // load): the per-request cost of spotting a duplicate is one hash plus
  // one cache-line probe, with the key bytes compared only on a hash
  // match. `group_plus_1 == 0` marks an empty slot, so a zero hash needs
  // no special case. Key strings live in the groups themselves.
  struct DedupSlot {
    uint64_t hash = 0;
    uint32_t group_plus_1 = 0;
  };
  // Sized by *distinct* keys, not batch size: it starts at 4 KiB (L1-
  // resident even while the rest of the pass streams requests) and doubles
  // past 50% load by re-seating the stored hashes.
  size_t dedup_mask = 255;
  std::vector<DedupSlot> dedup(dedup_mask + 1);
  size_t dedup_used = 0;
  std::string scratch;
  // Per-batch memo of the last (system -> profile, breaker state)
  // resolution: batches overwhelmingly target one system, and the
  // estimator may not be mutated mid-batch (class contract), so the
  // pointer stays valid for the batch. The breaker memo tolerates
  // intra-batch `now` variance — it gates a degradation decision (flagged
  // in the result), never a correctness one.
  const remote::HealthRegistry* health =
      ctx.health != nullptr ? ctx.health : options_.health;
  const std::string* memo_system = nullptr;
  const core::CostingProfile* memo_profile = nullptr;
  bool memo_breaker_open = false;
  int64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    // Deadline gate, mirrored from Estimate(): an expired request gets a
    // per-request DeadlineExceeded with no cache probe, no computation,
    // and (keyless group) no pass-3 fill.
    if (ctx.DeadlineExpiredAt(requests[i].now)) {
      group_of[i] = static_cast<uint32_t>(groups.size());
      MissGroup shed;
      shed.first_index = i;
      shed.preanswered = true;
      groups.push_back(std::move(shed));
      computed.emplace_back(
          Status::DeadlineExceeded("estimate deadline expired before serving"));
      continue;
    }
    if (memo_system == nullptr || *memo_system != requests[i].system) {
      auto profile = estimator_->GetProfile(requests[i].system);
      memo_profile = profile.ok() ? profile.value() : nullptr;
      memo_breaker_open = health != nullptr &&
                          health->IsOpen(requests[i].system, requests[i].now);
      memo_system = &requests[i].system;
    }
    KeyWithProfileTo(requests[i], bctx, memo_profile, &scratch);
    bool from_cache = false;
    std::optional<core::HybridEstimate> hit;
    if (!scratch.empty()) {
      const uint64_t key_hash = std::hash<std::string_view>{}(scratch);
      size_t slot = key_hash & dedup_mask;
      size_t dup_group = SIZE_MAX;
      while (dedup[slot].group_plus_1 != 0) {
        if (dedup[slot].hash == key_hash &&
            groups[dedup[slot].group_plus_1 - 1].key == scratch) {
          dup_group = dedup[slot].group_plus_1 - 1;
          break;
        }
        slot = (slot + 1) & dedup_mask;
      }
      if (dup_group != SIZE_MAX) {
        // Duplicate of an earlier request: ride its group, no cache probe.
        group_of[i] = static_cast<uint32_t>(dup_group);
        continue;
      }
      dedup[slot] = {key_hash, static_cast<uint32_t>(groups.size() + 1)};
      if (++dedup_used * 2 > dedup_mask) {
        std::vector<DedupSlot> bigger(2 * (dedup_mask + 1));
        const size_t bigger_mask = bigger.size() - 1;
        for (const DedupSlot& s : dedup) {
          if (s.group_plus_1 == 0) continue;
          size_t j = s.hash & bigger_mask;
          while (bigger[j].group_plus_1 != 0) j = (j + 1) & bigger_mask;
          bigger[j] = s;
        }
        dedup.swap(bigger);
        dedup_mask = bigger_mask;
      }
      bool served_stale = false;
      hit = cache_.Get(scratch, epoch, requests[i].now, counters,
                       /*allow_stale=*/memo_breaker_open ||
                           ctx.admission_degraded,
                       &served_stale);
      if (hit) {
        if (served_stale) {
          hit->fell_back_reason = memo_breaker_open
                                      ? "breaker_open:served_stale"
                                      : "admission_overload:served_stale";
        }
        from_cache = true;
      }
    }
    group_of[i] = static_cast<uint32_t>(groups.size());
    groups.push_back(MissGroup{i, scratch, memo_profile, memo_breaker_open,
                               from_cache});
    if (hit) {
      computed.emplace_back(*std::move(hit));
    } else {
      computed.emplace_back(Status::Internal("unfilled"));
    }
  }

  // Pass 2: compute the unique misses. Distinct-key groups routed to the
  // same (system, logical-operator model) are fused into batched work
  // units — one CostEstimator::EstimateBatch call lowers the whole unit's
  // network forward passes into a single GEMM per layer (DESIGN.md §14).
  // Everything else (unknown systems, sub-op routes, open breakers, groups
  // smaller than batch_min_group_size) keeps the scalar path. Units are
  // fanned out over the pool (inline when jobs = 1 or there is at most one
  // unit). The estimator read path is const and touches no shared mutable
  // state; the trace sink and registries are thread-safe by contract
  // (DESIGN.md §9).
  const size_t num_groups = groups.size();
  struct WorkUnit {
    bool batched = false;
    std::vector<size_t> gs;  ///< group ids computed by this unit
  };
  std::vector<WorkUnit> units;
  units.reserve(num_groups);
  {
    // (system, operator type) identifies the model: the pass-1 memo maps
    // one system to one profile, and the profile holds one logical model
    // per operator type.
    std::map<std::pair<std::string_view, rel::OperatorType>,
             std::vector<size_t>>
        model_groups;
    std::vector<size_t> scalar_groups;
    for (size_t g = 0; g < num_groups; ++g) {
      // Already answered in pass 1 (cache hit or expired deadline).
      if (groups[g].from_cache || groups[g].preanswered) continue;
      const EstimateRequest& rep = requests[groups[g].first_index];
      const core::CostingProfile* p = groups[g].profile;
      if (p != nullptr && !groups[g].breaker_open &&
          p->RoutesToLogicalModel(rep.op.type, RequestContext(rep, bctx))) {
        model_groups[{rep.system, rep.op.type}].push_back(g);
      } else {
        scalar_groups.push_back(g);
      }
    }
    const size_t min_group =
        static_cast<size_t>(std::max(1, options_.batch_min_group_size));
    const size_t chunk_rows =
        static_cast<size_t>(std::max(1, options_.batch_chunk_rows));
    for (auto& [model, gs] : model_groups) {
      if (gs.size() < min_group) {
        scalar_groups.insert(scalar_groups.end(), gs.begin(), gs.end());
        continue;
      }
      for (size_t begin = 0; begin < gs.size(); begin += chunk_rows) {
        const size_t end = std::min(begin + chunk_rows, gs.size());
        units.push_back(WorkUnit{
            true, std::vector<size_t>(gs.begin() + begin, gs.begin() + end)});
      }
    }
    std::sort(scalar_groups.begin(), scalar_groups.end());
    for (size_t g : scalar_groups) {
      units.push_back(WorkUnit{false, {g}});
    }
  }

  int64_t batched_groups = 0;
  const auto compute_scalar = [&](size_t g) {
    const EstimateRequest& request = requests[groups[g].first_index];
    computed[g] = estimator_->Estimate(request.system, request.op,
                                       RequestContext(request, bctx));
  };
  const size_t num_units = units.size();
  ThreadPool* pool =
      (pool_ != nullptr && num_units > 1) ? pool_.get() : nullptr;
  // Workers write disjoint computed[g] slots, so no unit-level results are
  // collected; RunIndexed is only the fan-out.
  (void)RunIndexed(pool, num_units, [&](size_t u) -> bool {
    const WorkUnit& unit = units[u];
    if (!unit.batched) {
      compute_scalar(unit.gs.front());
      return true;
    }
    const std::string& system =
        requests[groups[unit.gs.front()].first_index].system;
    std::vector<const rel::SqlOperator*> ops;
    std::vector<core::EstimateContext> ctx_storage;
    std::vector<const core::EstimateContext*> ctxs;
    ops.reserve(unit.gs.size());
    ctx_storage.reserve(unit.gs.size());  // pointer stability for ctxs
    ctxs.reserve(unit.gs.size());
    for (size_t g : unit.gs) {
      const EstimateRequest& request = requests[groups[g].first_index];
      ops.push_back(&request.op);
      ctx_storage.push_back(RequestContext(request, bctx));
      ctxs.push_back(&ctx_storage.back());
    }
    std::vector<Result<core::HybridEstimate>> outs;
    const Status st = estimator_->EstimateBatch(system, ops, ctxs, &outs);
    if (!st.ok()) {
      // Batch-level failure: recompute every member through the scalar
      // path so per-request errors surface exactly as the unbatched path
      // would report them.
      for (size_t g : unit.gs) compute_scalar(g);
      return true;
    }
    for (size_t k = 0; k < unit.gs.size(); ++k) {
      computed[unit.gs[k]] = std::move(outs[k]);
    }
    return true;
  });
  for (const WorkUnit& unit : units) {
    if (unit.batched) batched_groups += static_cast<int64_t>(unit.gs.size());
  }

  // Pass 3: fill the cache from freshly computed groups (degraded, shed,
  // and admission-degraded results are never cached, see Estimate()), then
  // fan every group's answer out to its requests in one sequential sweep.
  for (size_t g = 0; g < num_groups; ++g) {
    // Answered in pass 1: a hit needs no refill, a shed must never fill.
    if (groups[g].from_cache || groups[g].preanswered) continue;
    if (computed[g].ok() && !groups[g].key.empty() &&
        computed[g].value().fell_back_reason.empty() &&
        !ctx.admission_degraded) {
      cache_.Put(groups[g].key, epoch,
                 requests[groups[g].first_index].now, computed[g].value(),
                 counters);
    }
  }
  std::vector<Result<core::HybridEstimate>> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const MissGroup& g = groups[group_of[i]];
    // Every request riding a hit group counts as a served hit, duplicates
    // included.
    if (g.from_cache) ++hits;
    results.push_back(computed[group_of[i]]);
  }

  if (batch.enabled()) {
    int64_t unique_misses = 0;
    for (const MissGroup& g : groups) {
      if (!g.from_cache) ++unique_misses;
    }
    const int64_t misses = static_cast<int64_t>(n) - hits;
    batch.SetInt("size", static_cast<int64_t>(n))
        .SetInt("hits", hits)
        .SetInt("misses", misses)
        .SetInt("unique_misses", unique_misses)
        .SetInt("deduped", misses - unique_misses)
        .SetInt("batched", batched_groups);
  }
  return results;
}

MetricsSnapshot EstimationService::StatsSnapshot() const {
  const CacheStats stats = cache_.Stats();
  MetricsSnapshot snap;
  snap.samples = {
      {"serving.cache.hits", static_cast<double>(stats.hits), "count"},
      {"serving.cache.misses", static_cast<double>(stats.misses), "count"},
      {"serving.cache.evictions", static_cast<double>(stats.evictions),
       "count"},
      {"serving.cache.stale_epoch", static_cast<double>(stats.stale_epoch),
       "count"},
      {"serving.cache.stale_served", static_cast<double>(stats.stale_served),
       "count"},
      {"serving.cache.entries", static_cast<double>(stats.entries), "count"},
      {"serving.cache.hit_rate", stats.HitRate(), "ratio"},
      {"serving.cache.lockless_hits", static_cast<double>(stats.lockless_hits),
       "count"},
      {"serving.cache.lockless_misses",
       static_cast<double>(stats.lockless_misses), "count"},
      {"serving.cache.locked_gets", static_cast<double>(stats.locked_gets),
       "count"},
      {"serving.cache.lru_touches", static_cast<double>(stats.lru_touches),
       "count"},
  };
  return snap;
}

std::string EstimationService::ExplainJson() const {
  const CacheStats stats = cache_.Stats();
  std::string json = "{\n  \"serving\": {\n";
  json += "    \"model_epoch\": " +
          std::to_string(estimator_->model_epoch()) + ",\n";
  json += "    \"jobs\": " + std::to_string(options_.jobs) + ",\n";
  json += "    \"cache\": {\n";
  json += "      \"shards\": " + std::to_string(options_.cache.shards) +
          ",\n";
  json += "      \"capacity\": " + std::to_string(options_.cache.capacity) +
          ",\n";
  json += "      \"ttl_seconds\": " + JsonNumberShort(
              options_.cache.ttl_seconds) + ",\n";
  json += "      \"quantize_bits\": " +
          std::to_string(options_.cache.quantize_bits) + ",\n";
  json += "      \"entries\": " + std::to_string(stats.entries) + ",\n";
  json += "      \"hits\": " + std::to_string(stats.hits) + ",\n";
  json += "      \"misses\": " + std::to_string(stats.misses) + ",\n";
  json += "      \"evictions\": " + std::to_string(stats.evictions) + ",\n";
  json += "      \"stale_epoch\": " + std::to_string(stats.stale_epoch) +
          ",\n";
  json += "      \"stale_served\": " + std::to_string(stats.stale_served) +
          ",\n";
  json += "      \"lockless_hits\": " + std::to_string(stats.lockless_hits) +
          ",\n";
  json += "      \"lockless_misses\": " +
          std::to_string(stats.lockless_misses) + ",\n";
  json += "      \"locked_gets\": " + std::to_string(stats.locked_gets) +
          ",\n";
  json += "      \"lru_touches\": " + std::to_string(stats.lru_touches) +
          ",\n";
  json += "      \"hit_rate\": " + JsonNumberShort(stats.HitRate()) + "\n";
  json += "    },\n";
  const int64_t tracked =
      options_.health != nullptr
          ? static_cast<int64_t>(options_.health->TrackedCount())
          : 0;
  const int64_t open =
      options_.health != nullptr
          ? static_cast<int64_t>(options_.health->OpenCount())
          : 0;
  json += "    \"health\": {\n";
  json += "      \"tracked\": " + std::to_string(tracked) + ",\n";
  json += "      \"open\": " + std::to_string(open) + "\n";
  json += "    }\n  }\n}\n";
  return json;
}

}  // namespace intellisphere::serving
